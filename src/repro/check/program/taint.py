"""``sim-taint``: interprocedural taint tracking from host-nondeterminism
sources into simulated-time sinks.

The per-file ``wall-clock`` rule flags a ``time.time()`` *call*; it cannot
see the laundering the whole-program view exists for::

    def _elapsed():                 # helpers.py
        return time.time() - T0

    clock.advance(_elapsed())       # driver.py — sim timeline now depends
                                    # on the host clock

Sources are the wall-clock and unseeded-RNG expressions the determinism
lint already recognizes.  Sinks are the places a value becomes part of the
simulated timeline: ``SimClock.advance`` / ``advance_to`` arguments, stores
to ``BatchRecord`` timers and event-timestamp attributes (``time_*``,
``*_ts``, ``timestamp``, ``sim_start`` …), and keyword arguments by those
names at any call site.

Propagation is a summary-based fixpoint over the call graph.  For every
function the analysis computes:

* ``returns_source`` — a source value can reach its return;
* ``params_to_return`` — parameter indices that flow into the return;
* ``params_to_sink`` — parameter indices that flow into a sink (directly
  or through further calls).

Intraprocedurally, local names carry label sets (``SRC`` and parameter
indices) through assignments, arithmetic, containers, and calls; unresolved
calls conservatively pass their arguments' taint through.  A finding fires
where a ``SRC``-labeled value meets a sink — in the function holding the
sink, or at the call site that feeds a tainted argument into a callee whose
summary says that parameter reaches a sink.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..lint import (
    _NUMPY_LEGACY_RANDOM,
    _WALLCLOCK_DATETIME_FNS,
    _WALLCLOCK_TIME_FNS,
)
from .base import AnalysisPass, Finding, Rule
from .ir import FunctionInfo, ModuleInfo, ProjectIR, _dotted

SRC = -1  # taint label: a host-nondeterminism source (params are >= 0)

#: Method names whose argument values enter the simulated timeline.
SINK_METHODS = frozenset({"advance", "advance_to"})

#: Attribute / keyword names that hold simulated timestamps or timers.
_SINK_EXACT = frozenset(
    {"timestamp", "sim_start", "sim_dur", "sim_end", "t_start", "t_end",
     "deadline_usec"}
)


def is_sink_name(name: str) -> bool:
    return (
        name in _SINK_EXACT
        or name.startswith("time_")
        or name.endswith("_ts")
        or name.endswith("_usec_sink")
    )


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def is_source_call(node: ast.Call) -> Optional[str]:
    """A short reason string when ``node`` reads host time / entropy."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    if isinstance(base, ast.Name) and base.id == "time" \
            and func.attr in _WALLCLOCK_TIME_FNS:
        return f"time.{func.attr}()"
    if func.attr in _WALLCLOCK_DATETIME_FNS and not node.args:
        names = {"datetime", "date"}
        if (isinstance(base, ast.Name) and base.id in names) or (
            isinstance(base, ast.Attribute) and base.attr in names
        ):
            return f"datetime {func.attr}()"
    if isinstance(base, ast.Name) and base.id == "random":
        return f"random.{func.attr}()"
    if (
        isinstance(base, ast.Attribute)
        and base.attr == "random"
        and _root_name(base) in ("np", "numpy")
        and func.attr in _NUMPY_LEGACY_RANDOM
    ):
        return f"numpy.random.{func.attr}()"
    if func.attr == "default_rng" and not node.args and not node.keywords:
        return "unseeded default_rng()"
    return None


@dataclass
class FunctionSummary:
    returns_source: bool = False
    params_to_return: Set[int] = field(default_factory=set)
    params_to_sink: Set[int] = field(default_factory=set)

    def snapshot(self) -> Tuple:
        return (
            self.returns_source,
            frozenset(self.params_to_return),
            frozenset(self.params_to_sink),
        )


class _FunctionTaint(ast.NodeVisitor):
    """One intraprocedural evaluation of a function body.

    ``report`` toggles finding emission: the fixpoint rounds run silent and
    only the final round reports, so every summary is stable first.
    """

    def __init__(
        self,
        owner: "SimTaintPass",
        ir: ProjectIR,
        module: ModuleInfo,
        fn: FunctionInfo,
        summaries: Dict[str, FunctionSummary],
        report: bool,
    ) -> None:
        self.owner = owner
        self.ir = ir
        self.module = module
        self.fn = fn
        self.summaries = summaries
        self.report = report
        self.summary = summaries[fn.qname]
        self.env: Dict[str, Set[int]] = {
            name: {i} for i, name in enumerate(fn.params)
        }
        self.findings: List[Finding] = []

    # ------------------------------------------------------------- labels

    def eval(self, node: Optional[ast.AST]) -> Set[int]:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return self.eval(node.value)
        if isinstance(node, (ast.BinOp,)):
            return self.eval(node.left) | self.eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out: Set[int] = set()
            for v in node.values:
                out |= self.eval(v)
            return out
        if isinstance(node, ast.Compare):
            out = self.eval(node.left)
            for c in node.comparators:
                out |= self.eval(c)
            return out
        if isinstance(node, ast.IfExp):
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for elt in node.elts:
                out |= self.eval(elt)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for k, v in zip(node.keys, node.values):
                out |= self.eval(k) | self.eval(v)
            return out
        if isinstance(node, ast.Subscript):
            return self.eval(node.value)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            out = set()
            for child in ast.iter_child_nodes(node):
                out |= self.eval(child)
            return out
        if isinstance(node, ast.NamedExpr):
            labels = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = set(labels)
            return labels
        return set()

    def _eval_call(self, node: ast.Call) -> Set[int]:
        reason = is_source_call(node)
        if reason is not None:
            return {SRC}

        arg_labels = [self.eval(a) for a in node.args]
        kw_labels = [self.eval(kw.value) for kw in node.keywords]

        # Sink: clock.advance(x) / clock.advance_to(x) by method name.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in SINK_METHODS
            and node.args
        ):
            self._hit_sink(
                node, arg_labels[0],
                f"argument of .{node.func.attr}() advances the simulated clock",
            )

        # Sink: timestamp-named keyword arguments anywhere.
        for kw, labels in zip(node.keywords, kw_labels):
            if kw.arg is not None and is_sink_name(kw.arg):
                self._hit_sink(
                    node, labels,
                    f"keyword {kw.arg}= carries a simulated timestamp",
                )

        callee = None
        site = self._callsite_for(node)
        if site is not None:
            callee = site.callee
        summary = self.summaries.get(callee) if callee else None
        if summary is not None:
            out: Set[int] = set()
            if summary.returns_source:
                out.add(SRC)
            callee_fn = self.ir.functions.get(callee)
            offset = self._arg_offset(callee_fn, node)
            for i, labels in enumerate(arg_labels):
                callee_param = i + offset
                if callee_param in summary.params_to_return:
                    out |= labels
                if callee_param in summary.params_to_sink:
                    self._hit_sink(
                        node, labels,
                        f"argument {i} of {site.raw}() reaches a sim-time "
                        "sink inside the callee",
                    )
            if callee_fn is not None:
                names = callee_fn.params
                for kw, labels in zip(node.keywords, kw_labels):
                    if kw.arg in names:
                        idx = names.index(kw.arg)
                        if idx in summary.params_to_return:
                            out |= labels
                        if idx in summary.params_to_sink:
                            self._hit_sink(
                                node, labels,
                                f"keyword {kw.arg}= of {site.raw}() reaches "
                                "a sim-time sink inside the callee",
                            )
            return out

        # Unknown callee: conservatively pass argument taint through the
        # return value (str(time.time()) stays tainted).
        out = set()
        for labels in arg_labels + kw_labels:
            out |= labels
        return out

    def _arg_offset(self, callee_fn: Optional[FunctionInfo], node: ast.Call) -> int:
        """Positional offset for the implicit ``self`` of method calls."""
        if callee_fn is None or callee_fn.owner_class is None:
            return 0
        # obj.method(a) → a binds to param 1; Class.method(obj, a) keeps 0.
        raw = _dotted(node.func) or ""
        head = raw.split(".")[0]
        if head and head[0].isupper():
            return 0
        return 1 if isinstance(node.func, ast.Attribute) else 0

    def _callsite_for(self, node: ast.Call):
        for site in self.fn.calls:
            if site.node is node:
                return site
        return None

    # -------------------------------------------------------------- sinks

    def _hit_sink(self, node: ast.AST, labels: Set[int], what: str) -> None:
        if SRC in labels:
            if self.report:
                self.findings.append(
                    self.owner.make_finding(
                        self.owner.RULE_FLOW,
                        path=str(self.module.path),
                        line=getattr(node, "lineno", self.fn.line),
                        col=getattr(node, "col_offset", 0),
                        message=(
                            f"host-nondeterministic value flows into the "
                            f"simulated timeline: {what} "
                            f"(in {self.fn.qname})"
                        ),
                    )
                )
        for label in labels:
            if label >= 0:
                self.summary.params_to_sink.add(label)

    # --------------------------------------------------------- statements

    def visit_Assign(self, node: ast.Assign) -> None:
        labels = self.eval(node.value)
        for target in node.targets:
            self._bind(target, labels, node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind(node.target, self.eval(node.value), node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        labels = self.eval(node.value)
        if isinstance(node.target, ast.Name):
            self.env[node.target.id] = self.env.get(node.target.id, set()) | labels
        else:
            self._bind(node.target, labels, node)

    def _bind(self, target: ast.AST, labels: Set[int], stmt: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(labels)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, labels, stmt)
        elif isinstance(target, ast.Attribute) and is_sink_name(target.attr):
            self._hit_sink(
                stmt, labels,
                f"store to .{target.attr} (simulated timer/timestamp field)",
            )

    def visit_Return(self, node: ast.Return) -> None:
        labels = self.eval(node.value)
        if SRC in labels:
            self.summary.returns_source = True
        for label in labels:
            if label >= 0:
                self.summary.params_to_return.add(label)

    def visit_For(self, node: ast.For) -> None:
        self._bind(node.target, self.eval(node.iter), node)
        for child in node.body + node.orelse:
            self.visit(child)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            labels = self.eval(item.context_expr)
            if item.optional_vars is not None:
                self._bind(item.optional_vars, labels, node)
        for child in node.body:
            self.visit(child)

    visit_AsyncWith = visit_With
    visit_AsyncFor = visit_For

    def visit_Expr(self, node: ast.Expr) -> None:
        self.eval(node.value)

    def visit_If(self, node: ast.If) -> None:
        self.eval(node.test)
        for child in node.body + node.orelse:
            self.visit(child)

    def visit_While(self, node: ast.While) -> None:
        self.eval(node.test)
        for child in node.body + node.orelse:
            self.visit(child)

    def visit_Try(self, node: ast.Try) -> None:
        for child in node.body:
            self.visit(child)
        for handler in node.handlers:
            for child in handler.body:
                self.visit(child)
        for child in node.orelse + node.finalbody:
            self.visit(child)

    def visit_FunctionDef(self, node) -> None:
        pass  # nested defs get their own summary via the module walk

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef

    def run(self) -> List[Finding]:
        # Two textual sweeps approximate loop-carried flows (a name tainted
        # late in a loop body feeding a sink earlier in the next iteration).
        for _ in range(2):
            for stmt in self.fn.node.body:
                self.visit(stmt)
        return self.findings


class SimTaintPass(AnalysisPass):
    """Interprocedural wall-clock / unseeded-RNG → sim-time sink tracking."""

    name = "sim-taint"
    RULE_FLOW = Rule(
        id="sim-taint",
        pass_name="sim-taint",
        severity="error",
        description=(
            "host wall-clock or unseeded-RNG value flows (possibly through "
            "helper calls) into the simulated clock, an event timestamp, or "
            "a BatchRecord timer"
        ),
    )
    rules = (RULE_FLOW,)

    def run(self, ir: ProjectIR) -> List[Finding]:
        summaries: Dict[str, FunctionSummary] = {
            qname: FunctionSummary() for qname in ir.functions
        }
        # Fixpoint on summaries (silent rounds).
        for _ in range(len(ir.functions) + 2):
            changed = False
            for qname, fn in ir.functions.items():
                module = ir.modules.get(fn.module)
                if module is None:
                    continue
                before = summaries[qname].snapshot()
                _FunctionTaint(self, ir, module, fn, summaries, report=False).run()
                if summaries[qname].snapshot() != before:
                    changed = True
            if not changed:
                break
        # Reporting round against stable summaries.
        findings: List[Finding] = []
        for qname, fn in ir.functions.items():
            module = ir.modules.get(fn.module)
            if module is None:
                continue
            findings.extend(
                _FunctionTaint(self, ir, module, fn, summaries, report=True).run()
            )
        # The double sweep in run() can report one flow twice.
        unique = {(f.path, f.line, f.col, f.message): f for f in findings}
        return list(unique.values())
