"""Live campaign telemetry: worker heartbeats, job lifecycle, progress view.

Campaigns used to be a black box between "spawned the pool" and "merged the
rows": a wedged worker looked exactly like a slow one.  This module adds a
side-channel — workers emit small lifecycle events (``job.start``,
``heartbeat``, ``job.done``, ``job.failed``) onto a shared queue; the parent
drains it into an NDJSON telemetry file and a live progress state that
``uvm-repro campaign --watch`` renders between refreshes.  The fleet
coordinator (:mod:`repro.campaign.fleet`) additionally *acts* on the same
stream: heartbeat silence past the stall timeout escalates to SIGTERM then
SIGKILL, and checkpoint/resume events land in the run ledger.

The channel is strictly *observational*: telemetry rides next to the result
path, never through it, so the merged campaign NDJSON stays byte-identical
with telemetry on or off, for any worker count.  Workers receive the queue
proxy inside their payload dict (no module globals, no pool initializer
state — the ``mp-global-write`` whole-program pass would flag either), and
every event is a plain picklable dict, so the channel works under both the
``fork`` and ``spawn`` start methods.

Two host clocks are deliberately kept apart.  NDJSON arrival stamps (the
``t`` field) are *wall-clock* seconds since campaign start — they are a
persistent artifact people correlate with logs and dashboards.  Liveness
bookkeeping (``started_at``/``last_seen``, the stall detector, rates and
ETA) runs on ``time.monotonic()``: an NTP step or a laptop suspend must not
spuriously flag a healthy worker as stalled — or worse, hide a genuinely
wedged one by jumping the wall clock backwards.  The simulator itself never
sees either clock.
"""

from __future__ import annotations

import json
import queue as queue_mod
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Seconds between worker heartbeats while a job simulates.
HEARTBEAT_INTERVAL_SEC = 1.0

#: Event types a campaign emits (the telemetry NDJSON vocabulary).  The
#: ``job.checkpoint``/``job.resume``/``job.retry``/``job.kill`` and
#: ``worker.*`` events exist only under the fleet coordinator; a plain
#: serial run emits the original six.
EVENT_TYPES = (
    "campaign.start",
    "campaign.resume",
    "job.start",
    "heartbeat",
    "job.checkpoint",
    "job.resume",
    "job.retry",
    "job.kill",
    "job.done",
    "job.failed",
    "worker.spawn",
    "worker.exit",
    "campaign.done",
)


# --------------------------------------------------------------- worker side


def emit(channel, event: dict) -> None:
    """Put one event on the telemetry channel (no-op when channel is None).

    Never raises: a dead manager process (parent torn down mid-run) must not
    turn a finished simulation into a failure.
    """
    if channel is None:
        return
    try:
        channel.put(event)
    except Exception:
        pass


class HeartbeatThread:
    """Daemon thread beating a job's batch progress onto the channel.

    ``progress_fn`` is sampled on each beat — typically
    ``lambda: len(system.driver.log)`` — so the parent can distinguish a
    slow-but-moving job from a wedged one.
    """

    def __init__(
        self,
        channel,
        index: int,
        progress_fn: Callable[[], int],
        interval_sec: float = HEARTBEAT_INTERVAL_SEC,
    ) -> None:
        self._channel = channel
        self._index = index
        self._progress_fn = progress_fn
        self._interval = interval_sec
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"uvm-heartbeat-{index}", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                batches = int(self._progress_fn())
            except Exception:
                break
            emit(
                self._channel,
                {"type": "heartbeat", "index": self._index, "batches": batches},
            )

    def stop(self) -> None:
        """Stop beating *now* — the fleet's kill harness calls this before a
        self-inflicted SIGKILL so the thread cannot die mid-``put`` and
        strand a queue lock."""
        self._stop.set()

    def __enter__(self) -> "HeartbeatThread":
        if self._channel is not None:
            self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()


# --------------------------------------------------------------- parent side


@dataclass
class JobState:
    """What the parent knows about one in-flight job.

    ``started_at``/``last_seen`` are ``time.monotonic()`` readings — liveness
    bookkeeping, never serialized into the telemetry file.
    """

    index: int
    workload: str
    config: str
    seed: int
    batches: int = 0
    started_at: float = 0.0  # dim: [wall]
    last_seen: float = 0.0  # dim: [wall]


@dataclass
class CampaignProgress:
    """Aggregated live view of a running campaign (pure data — the renderer
    and the stall detector are functions of this plus a clock reading)."""

    total: int
    cached: int = 0
    done: int = 0
    failed: int = 0
    retried: int = 0
    batches_done: int = 0
    started_at: float = 0.0  # dim: [wall]
    running: Dict[int, JobState] = field(default_factory=dict)

    @property
    def finished(self) -> int:
        """Cells accounted for: cache hits + completed + failed."""
        return self.cached + self.done + self.failed

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.finished)


def apply_event(progress: CampaignProgress, event: dict, now: float) -> None:
    """Fold one telemetry event into the progress state.

    ``now`` is a ``time.monotonic()`` reading (anything comparable works for
    the pure-function tests) — it feeds liveness state only.
    """
    etype = event.get("type")
    index = event.get("index")
    if etype in ("campaign.start", "campaign.resume"):
        progress.started_at = now
        progress.cached = int(event.get("cached", 0))
    elif etype == "job.start":
        progress.running[index] = JobState(
            index=index,
            workload=str(event.get("workload", "?")),
            config=str(event.get("config", "?")),
            seed=int(event.get("seed", 0)),
            started_at=now,
            last_seen=now,
        )
    elif etype in ("heartbeat", "job.checkpoint", "job.resume"):
        job = progress.running.get(index)
        if job is not None:
            job.batches = int(event.get("batches", job.batches))
            job.last_seen = now
    elif etype == "job.done":
        job = progress.running.pop(index, None)
        progress.done += 1
        progress.batches_done += int(
            event.get("batches", job.batches if job else 0)
        )
    elif etype == "job.retry":
        # The attempt died but the job is not finally failed: it leaves the
        # running set and will come back with a fresh job.start.
        progress.running.pop(index, None)
        progress.retried += 1
    elif etype == "job.failed":
        progress.running.pop(index, None)
        progress.failed += 1


def stalled_jobs(
    progress: CampaignProgress, now: float, timeout_sec: float
) -> List[JobState]:
    """Running jobs silent for longer than ``timeout_sec`` (oldest first)."""
    stalled = [
        job
        for job in progress.running.values()
        if now - job.last_seen > timeout_sec
    ]
    stalled.sort(key=lambda job: job.last_seen)
    return stalled


def render_progress(
    progress: CampaignProgress,
    now: float,
    stall_timeout_sec: Optional[float] = None,
) -> str:
    """The ``--watch`` progress view as a plain multi-line string.

    Pure function of (progress, now): the renderer snapshot test feeds it a
    hand-built state and pins the exact output.
    """
    elapsed = max(0.0, now - progress.started_at)
    rate = progress.batches_done / elapsed if elapsed > 0 else 0.0
    hit_rate = progress.cached / progress.total if progress.total else 0.0
    retries = f", {progress.retried} retried" if progress.retried else ""
    lines = [
        f"campaign: {progress.finished}/{progress.total} cells "
        f"({progress.done} run, {progress.cached} cached, "
        f"{progress.failed} failed{retries}) | {len(progress.running)} running",
        f"  batches/sec {rate:.1f} | cache hit rate {hit_rate:.0%} "
        f"| elapsed {elapsed:.0f}s | eta {format_eta(progress, now)}",
    ]
    stalled = (
        {job.index for job in stalled_jobs(progress, now, stall_timeout_sec)}
        if stall_timeout_sec is not None
        else set()
    )
    for index in sorted(progress.running):
        job = progress.running[index]
        flag = "  [STALLED]" if index in stalled else ""
        lines.append(
            f"  #{job.index} {job.workload}/{job.config} seed={job.seed} "
            f"batches={job.batches}{flag}"
        )
    return "\n".join(lines)


def format_eta(progress: CampaignProgress, now: float) -> str:
    """Naive remaining-time estimate from the completed-cell rate."""
    completed = progress.done + progress.failed
    elapsed = max(0.0, now - progress.started_at)
    if completed == 0 or elapsed <= 0:
        return "?"
    per_cell = elapsed / completed
    eta = per_cell * progress.remaining
    if eta >= 90:
        return f"{eta / 60:.1f}m"
    return f"{eta:.0f}s"


class CampaignMonitor:
    """Parent-side telemetry endpoint: queue owner, NDJSON writer, progress.

    One monitor per campaign run.  ``poll()`` drains every queued event,
    stamps it with arrival time (wall seconds since campaign start, so
    telemetry files diff cleanly), appends it to the NDJSON file, and folds
    it into :attr:`progress` using the monotonic clock.  The runner calls
    ``poll()`` between waits; the CLI additionally renders
    :func:`render_progress` after each poll.

    ``mp_safe`` forces a process-shareable queue even for one worker (the
    fleet coordinator always talks to real child processes); ``queue``
    plugs in an externally owned channel instead — the monitor then never
    creates or shuts down a manager of its own.
    """

    def __init__(
        self,
        total_cells: int,
        jobs: int = 1,
        path=None,
        stall_timeout_sec: Optional[float] = None,
        watch: bool = False,
        stream=None,
        mp_safe: Optional[bool] = None,
        queue=None,
    ) -> None:
        self.progress = CampaignProgress(total=total_cells)
        self.stall_timeout_sec = stall_timeout_sec
        self.watch = watch
        self._stream = stream if stream is not None else sys.stderr
        self._last_view = ""
        self._path = path
        self._fh = open(path, "w", encoding="utf-8") if path else None
        self._manager = None
        if queue is not None:
            self.queue = queue
        elif mp_safe or (mp_safe is None and jobs > 1):
            import multiprocessing

            self._manager = multiprocessing.Manager()
            self.queue = self._manager.Queue()
        else:
            self.queue = queue_mod.Queue()
        self._t0_wall = time.time()
        self._t0_mono = time.monotonic()

    # ------------------------------------------------------------- ingestion

    def poll(self) -> List[dict]:
        """Drain all pending events; returns them (stamped) in order."""
        drained: List[dict] = []
        while True:
            try:
                event = self.queue.get_nowait()
            except queue_mod.Empty:
                break
            except (EOFError, OSError, ConnectionError):
                break
            event = dict(event)
            event["t"] = round(time.time() - self._t0_wall, 3)
            apply_event(self.progress, event, time.monotonic())
            if self._fh is not None:
                self._fh.write(
                    json.dumps(event, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
            drained.append(event)
        if drained and self._fh is not None:
            self._fh.flush()
        if self.watch and drained:
            view = self.render()
            if view != self._last_view:
                self._last_view = view
                print(view, file=self._stream)
        return drained

    def render(self) -> str:
        return render_progress(
            self.progress, time.monotonic(), self.stall_timeout_sec
        )

    def stalled(self) -> List[JobState]:
        if self.stall_timeout_sec is None:
            return []
        return stalled_jobs(
            self.progress, time.monotonic(), self.stall_timeout_sec
        )

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Final drain, then release the file and the manager process."""
        self.poll()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None

    def __enter__(self) -> "CampaignMonitor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_telemetry(path) -> List[dict]:
    """Parse a telemetry NDJSON file back into event dicts (round-trip)."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
