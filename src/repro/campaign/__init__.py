"""Deterministic parallel experiment campaigns with cached results.

The paper's results are sweeps — figures and tables over workloads ×
oversubscription × prefetch policies × batch sizes — and a full
reproduction pass re-simulates thousands of launches.  This package turns
that into cheap, repeatable bulk experimentation:

* :mod:`.spec` — a campaign spec (JSON) expands a cartesian product of
  workloads × configs × seeds (or an explicit run list) into an ordered
  list of cells;
* :mod:`.runner` — cells fan out across a ``multiprocessing`` worker pool
  and merge back in spec order, so the output is byte-identical regardless
  of worker count (``--jobs 1`` == ``--jobs N``);
* :mod:`.cache` — a content-addressed on-disk result cache keyed by
  (canonical config, workload, seed, code version) means unchanged cells
  are never re-simulated;
* :mod:`.experiments` — the same cache wrapped around the figure/table
  experiment registry for the benchmark suite.

See ``docs/performance.md`` for the spec format and determinism guarantee.
"""

from .cache import ResultCache, cache_key, code_version
from .experiments import run_experiment_cached
from .runner import CampaignOutcome, run_campaign, to_ndjson
from .spec import CampaignCell, CampaignSpec

__all__ = [
    "CampaignCell",
    "CampaignSpec",
    "CampaignOutcome",
    "ResultCache",
    "cache_key",
    "code_version",
    "run_campaign",
    "run_experiment_cached",
    "to_ndjson",
]
