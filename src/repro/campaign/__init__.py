"""Deterministic parallel experiment campaigns with cached results.

The paper's results are sweeps — figures and tables over workloads ×
oversubscription × prefetch policies × batch sizes — and a full
reproduction pass re-simulates thousands of launches.  This package turns
that into cheap, repeatable bulk experimentation:

* :mod:`.spec` — a campaign spec (JSON) expands a cartesian product of
  workloads × configs × seeds (or an explicit run list) into an ordered
  list of cells;
* :mod:`.runner` — cells fan out across a supervised worker fleet
  (:mod:`.fleet`) and merge back in spec order, so the output is
  byte-identical regardless of worker count (``--jobs 1`` == ``--jobs N``);
* :mod:`.fleet` / :mod:`.ledger` / :mod:`.worker` — coordinator/worker
  execution with heartbeat enforcement, failure classification, bounded
  retries, and CRUM-style checkpoint resume recorded in a persistent
  SQLite run ledger (``uvm-repro campaign --resume``);
* :mod:`.cache` — a content-addressed on-disk result cache keyed by
  (canonical config, workload, seed, code version) means unchanged cells
  are never re-simulated;
* :mod:`.experiments` — the same cache wrapped around the figure/table
  experiment registry for the benchmark suite.

See ``docs/performance.md`` for the spec format and determinism guarantee.
"""

from .cache import ResultCache, cache_key, code_version
from .experiments import run_experiment_cached
from .fleet import (
    CampaignInterrupted,
    FleetChaos,
    FleetConfig,
    FleetCoordinator,
    FleetRetryPolicy,
)
from .ledger import RunLedger, spec_hash
from .runner import CampaignOutcome, run_campaign, to_ndjson
from .spec import CampaignCell, CampaignSpec
from .worker import classify_error_type, make_row

__all__ = [
    "CampaignCell",
    "CampaignInterrupted",
    "CampaignOutcome",
    "CampaignSpec",
    "FleetChaos",
    "FleetConfig",
    "FleetCoordinator",
    "FleetRetryPolicy",
    "ResultCache",
    "RunLedger",
    "cache_key",
    "classify_error_type",
    "code_version",
    "make_row",
    "run_campaign",
    "run_experiment_cached",
    "spec_hash",
    "to_ndjson",
]
