"""Resumable campaign-cell execution: checkpoint files, restore, harnesses.

One campaign cell is a pure function of (workload, config, seed), which is
what makes CRUM-style resume possible at all: a worker that dies mid-cell
leaves behind an *engine checkpoint file* — the PR 3
:class:`~repro.sim.checkpoint.EngineCheckpoint` blob plus the little bit of
workload-harness state around it — and any later attempt, in any process,
can rebuild the same deterministic world, restore the blob, and replay the
tail.  The resumed cell's summary is byte-identical to an uninterrupted
run's, so checkpoint resume never shows up in merged campaign output.

The cell checkpoint rides *outside* the engine blob:

* ``next_step`` / ``in_launch`` — where the workload harness was in its
  step list (host phases and kernel launches), since
  :class:`~repro.sim.checkpoint.EngineCheckpoint` deliberately knows
  nothing about the workload driving the engine;
* completed :class:`~repro.sim.engine.LaunchResult` s — records of earlier
  kernels in the same cell;
* engine resilience counters — instrumentation the engine checkpoint
  excludes by design (they must not rewind on *in-process* crash recovery),
  but which a *cross-process* resume must carry or the resumed summary
  would under-count;
* the cell key — a resumed attempt refuses a checkpoint written for a
  different (workload, config, seed).

Rebuilding the world on resume leans on one property: ``workload.steps()``
only allocates and builds programs — registration side effects are
overwritten wholesale by ``restore_into`` — so calling it again on a fresh
system is safe and cheap.

The kill/hang harnesses at the bottom are the fleet's own fault-injection
suite (the worker-process analogue of the PR 3 injector's one-shot engine
crashes): ``kill_at_batch`` SIGKILLs the worker at a batch boundary,
``hang_at_batch`` SIGSTOPs it so heartbeats go silent and the coordinator's
stall escalation has something real to escalate against.
"""

from __future__ import annotations

import os
import pickle
import signal
from typing import List, Optional

from .spec import CampaignCell
from .telemetry import HEARTBEAT_INTERVAL_SEC, HeartbeatThread, emit

#: Cell-checkpoint file format version (bump on layout change; a mismatched
#: or unreadable file is ignored and the cell reruns from scratch).
CHECKPOINT_VERSION = 1

#: Default auto-checkpoint cadence in serviced batches.
DEFAULT_CHECKPOINT_EVERY = 8


def cell_key(payload: dict) -> str:
    """Identity of a cell for checkpoint-file validation."""
    return (
        f"{payload['workload']}/{payload['config_label']}"
        f"/seed={payload['seed']}/v{CHECKPOINT_VERSION}"
    )


def checkpoint_path(checkpoint_dir: str, index: int) -> str:
    """Deterministic checkpoint file location for cell ``index`` — survives
    coordinator death even if the ledger write raced the crash."""
    return os.path.join(checkpoint_dir, f"cell-{index}.ckpt")


def write_cell_checkpoint(path: str, state: dict) -> None:
    """Atomically persist one cell checkpoint (tmp + rename): a worker
    killed mid-write must never leave a truncated file a resume would
    trip over."""
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            pickle.dump(state, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_cell_checkpoint(path: str, key: str) -> Optional[dict]:
    """The checkpoint at ``path`` if it exists, parses, and matches ``key``.

    Any corruption or identity mismatch silently degrades to a from-scratch
    rerun — a bad checkpoint file must never fail a resumable job.
    """
    try:
        with open(path, "rb") as fh:
            state = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return None
    if not isinstance(state, dict) or state.get("version") != CHECKPOINT_VERSION:
        return None
    if state.get("cell_key") != key:
        return None
    return state


def discard_cell_checkpoint(path: Optional[str]) -> None:
    """Best-effort removal of a finished cell's checkpoint file."""
    if path is None:
        return
    try:
        os.remove(path)
    except OSError:
        pass


# ----------------------------------------------- failure taxonomy & rows

#: The fleet's failure vocabulary (see docs/fleet.md).  Only the first
#: three are plausibly transient and therefore worth a retry budget.
FAILURE_CLASSES = ("crash", "hang", "oom", "injected", "interrupt", "error")

#: OOM-like failures: host memory pressure or device exhaustion — the
#: paper's oversubscription sweeps brush against both on purpose.
_OOM_TYPES = frozenset({"MemoryError", "OutOfDeviceMemory", "AllocationError"})


def _injected_type_names() -> frozenset:
    """Every :class:`~repro.errors.InjectedFault` subclass, by name — the
    classifier works on exception type *names* because a worker death can
    only report a string across the process boundary."""
    from ..errors import InjectedFault

    names = set()
    stack = [InjectedFault]
    while stack:
        cls = stack.pop()
        names.add(cls.__name__)
        stack.extend(cls.__subclasses__())
    return frozenset(names)


def classify_error_type(error_type: str) -> str:
    """Map an exception type name onto the fleet failure taxonomy.

    Deterministic and total: unknown types fall into ``error``.  Injected
    faults win over OOM-likes (``PopulateEnomem`` is both) because an
    injected fault replays identically — retrying it burns the budget for
    nothing, whereas real OOM-like pressure is plausibly transient.
    """
    if error_type in ("WorkerCrash",):
        return "crash"
    if error_type in ("WorkerHang",):
        return "hang"
    if error_type in ("KeyboardInterrupt", "SystemExit"):
        return "interrupt"
    if error_type in _injected_type_names():
        return "injected"
    if error_type in _OOM_TYPES:
        return "oom"
    return "error"


def make_row(cell: CampaignCell, summary: dict) -> dict:
    """Merge-ready row for one resolved cell (ok or failed).

    Row bytes are a pure function of (cell, summary) — the classifier is
    deterministic — so serial, fleet, cached, and resumed paths all emit
    identical rows for identical cells.
    """
    row = {
        "index": cell.index,
        "workload": cell.workload,
        "config": cell.config_label,
        "seed": cell.seed,
    }
    if summary.get("failed"):
        row["status"] = "failed"
        row["error"] = {
            "class": classify_error_type(summary["error_type"]),
            "message": summary["error"],
            "type": summary["error_type"],
        }
        row["bundle"] = summary.get("bundle")
    else:
        row["status"] = "ok"
        row["result"] = summary
    return row


# ----------------------------------------------------------- chaos harness


class WorkerChaosHarness:
    """Self-inflicted worker failures at exact batch boundaries.

    The coordinator arms the harness through the payload (first attempt
    only), which keeps the fault injection deterministic: "worker running
    cell 3 dies at batch 10" reproduces exactly, like every other injected
    fault in this codebase.
    """

    def __init__(
        self,
        kill_at_batch: Optional[int] = None,
        hang_at_batch: Optional[int] = None,
        heartbeat: Optional[HeartbeatThread] = None,
    ) -> None:
        self.kill_at_batch = kill_at_batch
        self.hang_at_batch = hang_at_batch
        self._heartbeat = heartbeat

    def on_batch(self, batch_id: int) -> None:
        if self.kill_at_batch is not None and batch_id == self.kill_at_batch:
            # Quiesce the heartbeat thread first so SIGKILL cannot land
            # mid-put and strand a shared queue lock on the channel.
            if self._heartbeat is not None:
                self._heartbeat.stop()
            os.kill(os.getpid(), signal.SIGKILL)
        if self.hang_at_batch is not None and batch_id == self.hang_at_batch:
            if self._heartbeat is not None:
                self._heartbeat.stop()
            # A stopped process is the truest hang: no heartbeats, no
            # progress, SIGTERM queues undelivered — only SIGKILL works.
            os.kill(os.getpid(), signal.SIGSTOP)


# ------------------------------------------------------------- execution


def _engine_counter_state(engine) -> dict:
    return dict(vars(engine.counters))


def _restore_engine_counters(engine, state: dict) -> None:
    for name, value in state.items():
        setattr(engine.counters, name, value)


def run_cell(
    payload: dict,
    telemetry=None,
    harness: Optional[WorkerChaosHarness] = None,
) -> dict:
    """Simulate one campaign cell — possibly resuming a checkpoint — and
    return its deterministic summary dict.

    Payload keys beyond the :class:`~repro.campaign.spec.CampaignCell`
    fields: ``bundle_dir`` (crash forensics), ``checkpoint_path`` +
    ``checkpoint_every`` (periodic cell checkpoints), ``resume`` (attempt a
    checkpoint restore first), ``heartbeat_sec``, and the harness knobs
    ``kill_at_batch``/``hang_at_batch``.  Raises on failure — the callers
    (:func:`execute_cell` and the fleet worker loop) turn exceptions into
    failure summaries.
    """
    from ..api import RunResult, UvmSystem
    from ..gpu.warp import KernelLaunch
    from ..sim.checkpoint import EngineCheckpoint
    from ..workloads import WORKLOAD_REGISTRY
    from .runner import summarize_run

    cell = CampaignCell(
        index=payload["index"],
        workload=payload["workload"],
        config_label=payload["config_label"],
        seed=payload["seed"],
        overrides=payload.get("overrides", {}),
    )
    ckpt_path = payload.get("checkpoint_path")
    ckpt_every = payload.get("checkpoint_every", DEFAULT_CHECKPOINT_EVERY)
    heartbeat_sec = payload.get("heartbeat_sec", HEARTBEAT_INTERVAL_SEC)
    key = cell_key(payload)

    cfg = cell.build_config()
    if payload.get("bundle_dir") is not None:
        cfg.obs.bundle_dir = payload["bundle_dir"]
    cfg.obs = cfg.obs.disabled()
    system = UvmSystem(cfg)
    workload = WORKLOAD_REGISTRY[cell.workload]()
    steps = list(workload.steps(system))

    result = RunResult(workload=workload.name)
    t0 = system.clock.now
    start_step = 0
    restored = None
    if payload.get("resume") and ckpt_path is not None:
        restored = load_cell_checkpoint(ckpt_path, key)
    if restored is not None:
        EngineCheckpoint.from_bytes(restored["engine_blob"]).restore_into(
            system.engine
        )
        _restore_engine_counters(system.engine, restored["counters"])
        result.launches = pickle.loads(restored["launches"])
        t0 = restored["t0_usec"]
        start_step = restored["next_step"]
        emit(
            telemetry,
            {
                "type": "job.resume",
                "index": cell.index,
                "batches": len(system.driver.log),
                "step": start_step,
                "in_launch": restored["in_launch"],
            },
        )

    beat = HeartbeatThread(
        telemetry,
        cell.index,
        lambda: len(system.driver.log),
        interval_sec=heartbeat_sec,
    )
    if harness is None and (
        payload.get("kill_at_batch") is not None
        or payload.get("hang_at_batch") is not None
    ):
        harness = WorkerChaosHarness(
            payload.get("kill_at_batch"), payload.get("hang_at_batch"), beat
        )

    def snapshot(next_step: int, in_launch: bool) -> dict:
        return {
            "version": CHECKPOINT_VERSION,
            "cell_key": key,
            "cell_index": cell.index,
            "next_step": next_step,
            "in_launch": in_launch,
            "engine_blob": EngineCheckpoint.capture(system.engine).to_bytes(),
            "launches": pickle.dumps(
                result.launches, protocol=pickle.HIGHEST_PROTOCOL
            ),
            "counters": _engine_counter_state(system.engine),
            "t0_usec": t0,
            "batches": len(system.driver.log),
        }

    def make_batch_hook(step_index: int):
        def hook(engine, batch_id):
            if (
                ckpt_path is not None
                and ckpt_every > 0
                and batch_id % ckpt_every == 0
            ):
                write_cell_checkpoint(ckpt_path, snapshot(step_index, True))
                emit(
                    telemetry,
                    {
                        "type": "job.checkpoint",
                        "index": cell.index,
                        "batches": len(system.driver.log),
                        "path": ckpt_path,
                    },
                )
            if harness is not None:
                harness.on_batch(batch_id)

        return hook

    def run_launch_step(step_index: int, launch_fn) -> None:
        hook = make_batch_hook(step_index)
        system.engine._batch_hooks.append(hook)
        try:
            result.launches.append(launch_fn())
        finally:
            system.engine._batch_hooks.remove(hook)

    try:
        with beat:
            if restored is not None and restored["in_launch"]:
                # The checkpointed step is a kernel launch frozen mid-flight;
                # the restored LaunchProgress carries everything the engine
                # loop needs and the returned result spans the whole launch.
                run_launch_step(start_step, system.engine.resume)
                start_step += 1
            for i in range(start_step, len(steps)):
                step = steps[i]
                if isinstance(step, KernelLaunch):
                    run_launch_step(i, lambda s=step: system.launch(s))
                elif callable(step):
                    step(system)
                else:
                    raise TypeError(f"unsupported step {step!r}")
                if ckpt_path is not None:
                    write_cell_checkpoint(ckpt_path, snapshot(i + 1, False))
    except Exception as exc:
        # Ride the dead system on the exception so callers can surface the
        # crash bundle the engine just wrote (same idiom as the chaos CLI).
        exc.uvm_system = system
        raise

    result.total_time_usec = system.clock.now - t0
    summary = summarize_run(system, result)
    return summary


def execute_cell(payload: dict) -> dict:
    """Fleet/serial worker entry point: run one cell, never raise.

    A failing cell returns a *failure summary* — deterministic data (error
    type + message + bundle path) — so one bad point cannot abort a sweep
    and merged output stays byte-identical across worker counts.  Unlike
    the PR 6 pool worker, this variant does **not** emit ``job.failed``
    itself: the fleet coordinator owns the failure verdict (it may retry),
    so workers report outcomes and the coordinator narrates them.
    """
    telemetry = payload.pop("telemetry", None)
    emit(
        telemetry,
        {
            "type": "job.start",
            "index": payload["index"],
            "workload": payload["workload"],
            "config": payload["config_label"],
            "seed": payload["seed"],
            "attempt": payload.get("attempt", 1),
        },
    )
    try:
        summary = run_cell(payload, telemetry=telemetry)
    except Exception as exc:
        bundle = _last_bundle_of(exc)
        return {
            "failed": True,
            "error_type": type(exc).__name__,
            "error": str(exc),
            "bundle": bundle,
        }
    emit(
        telemetry,
        {
            "type": "job.done",
            "index": payload["index"],
            "batches": summary["batches"],
            "clock_usec": summary["clock_usec"],
        },
    )
    return summary


def _last_bundle_of(exc: BaseException) -> Optional[str]:
    """Crash-bundle path riding on the exception's system, if any."""
    system = getattr(exc, "uvm_system", None)
    if system is None:
        return None
    bundle = getattr(system.engine, "last_bundle", None)
    return str(bundle) if bundle else None
