"""Content-addressed on-disk result cache for campaign cells.

A cell's cache key is the SHA-256 of the canonical JSON of everything that
determines its simulated timeline:

* the full :class:`~repro.config.SystemConfig` as a nested dict — minus the
  ``obs`` section, which is documented (and property-tested) to be
  timeline-neutral, so toggling instrumentation never invalidates results;
* the workload id and seed;
* a code version: a content hash over every ``.py`` file of the installed
  ``repro`` package, so any source change invalidates every cached cell.

Entries are written atomically (temp file + ``os.replace``) so concurrent
campaigns sharing a cache directory never observe torn JSON; a corrupt or
unreadable entry is treated as a miss and recomputed.  Only the campaign
*parent* process reads and writes the cache — workers just simulate — so
there is no cross-process locking to get wrong.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Optional

from ..config import SystemConfig


def canonical_config_doc(config: SystemConfig) -> dict:
    """The config as a canonical nested dict (cache-key input).

    The ``obs`` section is excluded: observability is timeline-neutral by
    contract, and campaign workers run with instruments off regardless.
    The ``soa`` flag is excluded for the same reason: the SoA fault
    pipeline is bit-identical to the scalar path by contract
    (property-tested), so both representations may share cached rows.
    """
    doc = dataclasses.asdict(config)
    doc.pop("obs", None)
    doc.pop("soa", None)
    return doc


@lru_cache(maxsize=1)
def code_version() -> str:
    """Content hash of the installed ``repro`` package sources."""
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def cache_key(workload: str, seed: int, config: SystemConfig) -> str:
    """Content address of one campaign cell's result."""
    doc = {
        "workload": workload,
        "seed": seed,
        "config": canonical_config_doc(config),
        "code": code_version(),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Sharded key→document store under one cache directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str, ext: str) -> Path:
        return self.root / key[:2] / (key + ext)

    def _read(self, key: str, ext: str) -> Optional[bytes]:
        try:
            blob = self._path(key, ext).read_bytes()
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return blob

    def _write(self, key: str, ext: str, blob: bytes) -> None:
        path = self._path(key, ext)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------- JSON documents

    def get(self, key: str) -> Optional[dict]:
        """The cached JSON document for ``key``, or None (counted a miss)."""
        blob = self._read(key, ".json")
        if blob is None:
            return None
        try:
            return json.loads(blob.decode("utf-8"))
        except ValueError:
            # Corrupt entry: recompute (the next put overwrites it).
            self.hits -= 1
            self.misses += 1
            return None

    def put(self, key: str, doc: dict) -> None:
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        self._write(key, ".json", blob.encode("utf-8"))

    # ------------------------------------------------------- binary payloads

    def get_blob(self, key: str) -> Optional[bytes]:
        """Raw cached payload (pickled experiment results), or None."""
        return self._read(key, ".pkl")

    def put_blob(self, key: str, blob: bytes) -> None:
        self._write(key, ".pkl", blob)

    def stats(self) -> dict:
        return {"root": str(self.root), "hits": self.hits, "misses": self.misses}
