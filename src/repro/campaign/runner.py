"""Campaign execution: cache check, supervised fan-out, spec-order merge.

Every cell is a pure function of (workload, config, seed): the simulator is
deterministic by construction, so the cell summary a worker computes is the
summary — independent of which process ran it, in what order, whether it
came from the cache, or whether the attempt resumed a checkpoint.  That is
the determinism guarantee: the merged row list (and its NDJSON
serialization) is byte-identical for ``jobs=1`` and ``jobs=N``, warm or
cold cache, clean run or kill-and-resume.

Execution modes:

* **serial** (``jobs=1``, no chaos) — cells run inline in this process via
  :func:`~repro.campaign.worker.execute_cell`; ledger, checkpointing, and
  resume still work (the serial path is the reference the fleet must match
  byte-for-byte);
* **fleet** (``jobs>1`` or a chaos harness) — the supervised
  coordinator/worker fleet in :mod:`repro.campaign.fleet`: heartbeat
  enforcement, failure classification, bounded retries, checkpoint resume.

The parent process owns the cache and the ledger; workers receive plain
picklable payloads and return plain dicts, so the fleet works under both
the ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .cache import ResultCache, cache_key
from .fleet import CampaignInterrupted, FleetConfig, FleetCoordinator
from .ledger import RunLedger
from .spec import CampaignCell, CampaignSpec
from .telemetry import CampaignMonitor, emit as telemetry_emit
from .worker import (
    checkpoint_path,
    classify_error_type,
    discard_cell_checkpoint,
    execute_cell,
    make_row,
)

#: BatchRecord resilience counters summed into each cell summary (same set
#: as the chaos report).
_RESILIENCE_COUNTERS = (
    "retries_dma",
    "retries_transfer",
    "retries_populate",
    "ce_failovers",
    "prefetch_fallbacks",
    "blocks_deferred",
)


@dataclass
class CampaignOutcome:
    """A completed campaign: rows in spec order plus cache statistics.

    ``resumed`` counts rows replayed verbatim from the ledger; ``fleet`` is
    the coordinator's report (retries/kills/resumes/deaths plus a metrics
    snapshot) when the fleet ran, else None.
    """

    spec: CampaignSpec
    rows: List[dict]
    cache_hits: int
    cache_misses: int
    resumed: int = 0
    fleet: Optional[dict] = None


def summarize_run(system, result) -> dict:
    """Deterministic summary of one workload run (the cached cell value)."""
    records = result.records
    resilience = {
        name: sum(getattr(r, name) for r in records)
        for name in _RESILIENCE_COUNTERS
    }
    resilience.update(system.engine.counters.as_dict())
    return {
        "clock_usec": system.clock.now,
        "total_time_usec": result.total_time_usec,
        "kernel_time_usec": result.kernel_time_usec,
        "batch_time_usec": result.batch_time_usec,
        "batches": result.num_batches,
        "faults": result.total_faults,
        "faults_unique": sum(r.num_faults_unique for r in records),
        "pages_h2d": sum(r.pages_migrated_h2d for r in records),
        "pages_populated": sum(r.pages_populated for r in records),
        "pages_prefetched": sum(r.pages_prefetched for r in records),
        "pages_evicted": sum(r.pages_evicted for r in records),
        "evictions": sum(r.evictions for r in records),
        "bytes_h2d": sum(r.bytes_h2d for r in records),
        "bytes_d2h": sum(r.bytes_d2h for r in records),
        "resilience": resilience,
    }


def _uses_fleet(jobs: int, fleet_config: Optional[FleetConfig]) -> bool:
    """Fleet supervision engages for real parallelism or armed chaos; a
    plain ``jobs=1`` run stays inline (it is the byte-identity reference)."""
    if jobs > 1:
        return True
    return (
        fleet_config is not None
        and fleet_config.chaos is not None
        and not fleet_config.chaos.empty
    )


class _SerialRunner:
    """Inline (in-process) execution with the same ledger/checkpoint/resume
    semantics as the fleet — minus supervision, which needs real workers."""

    def __init__(self, rows, monitor, ledger, config: FleetConfig,
                 cache, bundle_dir) -> None:
        self.rows = rows
        self.monitor = monitor
        self.ledger = ledger
        self.config = config
        self.cache = cache
        self.bundle_dir = bundle_dir

    def _checkpoint_file(self, index: int) -> Optional[str]:
        if self.config.checkpoint_dir is None:
            return None
        return checkpoint_path(self.config.checkpoint_dir, index)

    def _record_events(self, events, attempts: Dict[int, int]) -> None:
        if self.ledger is None:
            return
        for event in events:
            index = event.get("index")
            if index not in attempts:
                continue
            if event["type"] == "job.checkpoint":
                self.ledger.job_checkpoint(
                    index,
                    attempts[index],
                    event.get("path", ""),
                    int(event.get("batches", 0)),
                )
            elif event["type"] == "job.resume":
                self.ledger.job_resumed(
                    index, attempts[index], int(event.get("batches", 0))
                )

    def run(self, pending: List[Tuple[CampaignCell, Optional[str]]]) -> None:
        attempts: Dict[int, int] = {}
        if self.ledger is not None:
            for info in self.ledger.jobs():
                attempts.setdefault(info.index, info.attempts)
        for cell, key in pending:
            index = cell.index
            ckpt = self._checkpoint_file(index)
            attempt = attempts.get(index, 0) + 1
            attempts[index] = attempt
            payload = {
                "index": index,
                "workload": cell.workload,
                "config_label": cell.config_label,
                "seed": cell.seed,
                "overrides": cell.overrides,
                "attempt": attempt,
                "bundle_dir": os.path.join(self.bundle_dir, f"cell-{index}")
                if self.bundle_dir is not None
                else None,
                "checkpoint_path": ckpt,
                "checkpoint_every": self.config.checkpoint_every,
                "heartbeat_sec": self.config.heartbeat_sec,
                "resume": ckpt is not None and os.path.exists(ckpt),
                "telemetry": self.monitor.queue
                if self.monitor is not None
                else None,
            }
            if self.ledger is not None:
                self.ledger.job_started(index, attempt, payload["resume"])
            try:
                summary = execute_cell(payload)
            except KeyboardInterrupt:
                if self.ledger is not None:
                    self.ledger.job_failed(
                        index, attempt, "interrupt", None, "interrupted"
                    )
                if self.monitor is not None:
                    self._record_events(self.monitor.poll(), attempts)
                raise CampaignInterrupted(self.rows)
            row = make_row(cell, summary)
            self.rows[index] = row
            if summary.get("failed"):
                failure_class = classify_error_type(summary["error_type"])
                if self.monitor is not None:
                    telemetry_emit(
                        self.monitor.queue,
                        {
                            "type": "job.failed",
                            "index": index,
                            "error": summary["error_type"],
                            "class": failure_class,
                            "bundle": summary.get("bundle"),
                        },
                    )
                if self.ledger is not None:
                    self.ledger.job_failed(
                        index, attempt, failure_class, row, summary["error"]
                    )
            else:
                if self.cache is not None and key is not None:
                    self.cache.put(key, {"result": summary})
                if self.ledger is not None:
                    self.ledger.job_done(index, attempt, row)
                discard_cell_checkpoint(ckpt)
            if self.monitor is not None:
                self._record_events(self.monitor.poll(), attempts)


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    bundle_dir: Optional[str] = None,
    monitor: Optional[CampaignMonitor] = None,
    ledger: Optional[RunLedger] = None,
    resume: bool = False,
    fleet_config: Optional[FleetConfig] = None,
) -> CampaignOutcome:
    """Run every cell of ``spec``; rows come back in spec order.

    ``bundle_dir`` arms per-cell crash-bundle forensics (cell ``i`` writes
    under ``<bundle_dir>/cell-<i>``).  ``monitor`` is an optional
    :class:`~repro.campaign.telemetry.CampaignMonitor`: workers stream
    lifecycle events onto it and the runner polls it while cells execute.
    ``ledger`` persists per-job state for crash recovery; with
    ``resume=True`` it replays already-``done`` rows verbatim and restarts
    the rest — from their latest engine checkpoint when one exists.
    ``fleet_config`` tunes the supervised fleet (retry budget, stall
    timeout, chaos harness).  None of these change the merged rows —
    telemetry is a side-channel, bundle/checkpoint paths are a pure
    function of the spec, and resumed cells summarize identically — so
    byte-identity holds across worker counts, cache temperatures, kill
    patterns, and resume paths.

    Raises :class:`~repro.campaign.fleet.CampaignInterrupted` on Ctrl-C
    after draining finished rows to the ledger and reaping every worker.
    """
    config = fleet_config if fleet_config is not None else FleetConfig()
    if config.checkpoint_dir is None and ledger is not None:
        config.checkpoint_dir = f"{ledger.path}.ckpt.d"
    if config.checkpoint_dir is not None:
        os.makedirs(config.checkpoint_dir, exist_ok=True)

    rows: List[Optional[dict]] = [None] * len(spec.cells)
    resumed = 0
    if ledger is not None:
        ledger.begin(spec, resume=resume)
        if resume:
            for index, row in ledger.completed_rows().items():
                rows[index] = row
            resumed = len(spec.cells) - rows.count(None)

    pending: List[Tuple[CampaignCell, Optional[str]]] = []
    for cell in spec.cells:
        if rows[cell.index] is not None:
            continue
        key = None
        if cache is not None:
            key = cache_key(cell.workload, cell.seed, cell.build_config())
            entry = cache.get(key)
            if entry is not None:
                rows[cell.index] = make_row(cell, entry["result"])
                if ledger is not None:
                    ledger.job_cached(cell.index, rows[cell.index])
                continue
        pending.append((cell, key))

    use_fleet = _uses_fleet(jobs, fleet_config) and bool(pending)
    own_monitor: Optional[CampaignMonitor] = None
    if monitor is None and (use_fleet or ledger is not None):
        # Supervision and ledger event folding both consume telemetry; spin
        # up a quiet in-process monitor when the caller did not provide one.
        # The owned instance lives in its own variable so the close guard
        # below tests the resource itself, not a boolean shadow of it.
        own_monitor = CampaignMonitor(
            len(spec.cells),
            stall_timeout_sec=config.stall_timeout_sec,
            mp_safe=False,
        )
        monitor = own_monitor

    fleet_report: Optional[dict] = None
    try:
        if monitor is not None:
            telemetry_emit(
                monitor.queue,
                {
                    "type": "campaign.resume" if resume else "campaign.start",
                    "name": spec.name,
                    "cells": len(spec.cells),
                    "cached": len(spec.cells) - len(pending),
                },
            )
            monitor.poll()

        if pending:
            if use_fleet:
                coordinator = FleetCoordinator(
                    pending,
                    rows,
                    jobs,
                    config,
                    cache=cache,
                    bundle_dir=bundle_dir,
                    monitor=monitor,
                    ledger=ledger,
                )
                report = coordinator.run()
                report["metrics"] = coordinator.metrics.snapshot()
                fleet_report = report
            else:
                _SerialRunner(
                    rows, monitor, ledger, config, cache, bundle_dir
                ).run(pending)

        if monitor is not None:
            telemetry_emit(
                monitor.queue,
                {
                    "type": "campaign.done",
                    "hits": cache.hits if cache is not None else 0,
                    "misses": cache.misses
                    if cache is not None
                    else len(spec.cells),
                    "failed": sum(
                        1 for row in rows if row and row.get("status") == "failed"
                    ),
                },
            )
            monitor.poll()
    finally:
        if own_monitor is not None:
            own_monitor.close()

    return CampaignOutcome(
        spec=spec,
        rows=rows,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else len(spec.cells),
        resumed=resumed,
        fleet=fleet_report,
    )


def to_ndjson(rows: List[dict]) -> str:
    """Canonical NDJSON: one sorted-key, compact JSON object per row.

    This is the byte-identity surface — same spec, same sources ⇒ same
    bytes, whatever the worker count, kill pattern, or resume path.
    """
    return "".join(
        json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
        for row in rows
    )
