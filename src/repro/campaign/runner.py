"""Campaign execution: cache check, worker-pool fan-out, spec-order merge.

Every cell is a pure function of (workload, config, seed): the simulator is
deterministic by construction, so the cell summary a worker computes is the
summary — independent of which process ran it, in what order, or whether it
came from the cache.  That is the determinism guarantee: the merged row
list (and its NDJSON serialization) is byte-identical for ``jobs=1`` and
``jobs=N``, warm or cold cache.

The parent process owns the cache; workers receive plain picklable
payloads and return plain dicts, so the pool works under both the ``fork``
and ``spawn`` start methods.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .cache import ResultCache, cache_key
from .spec import CampaignCell, CampaignSpec
from .telemetry import emit as telemetry_emit

#: BatchRecord resilience counters summed into each cell summary (same set
#: as the chaos report).
_RESILIENCE_COUNTERS = (
    "retries_dma",
    "retries_transfer",
    "retries_populate",
    "ce_failovers",
    "prefetch_fallbacks",
    "blocks_deferred",
)


@dataclass
class CampaignOutcome:
    """A completed campaign: rows in spec order plus cache statistics."""

    spec: CampaignSpec
    rows: List[dict]
    cache_hits: int
    cache_misses: int


def _execute_cell(payload: dict) -> dict:
    """Worker entry point: simulate one cell and summarize it.

    Top-level (picklable) and import-light at module scope: the simulator
    stack loads inside the worker.  Instruments are forced off — campaign
    summaries come from batch records and engine counters, both of which
    exist regardless of observability config, and dark cells run faster.
    The two optional side-channels ride inside the payload (never through
    module globals): ``bundle_dir`` arms crash-bundle forensics for this
    cell, ``telemetry`` is a queue proxy for lifecycle events.

    A failing cell returns a *failure summary* instead of raising — one bad
    (workload, config, seed) point must not abort a thousand-cell sweep.
    The failure is deterministic data (error class + message + bundle
    path), so merged output stays byte-identical across worker counts.
    """
    from ..api import UvmSystem
    from ..workloads import WORKLOAD_REGISTRY
    from .telemetry import HeartbeatThread, emit

    bundle_dir = payload.pop("bundle_dir", None)
    telemetry = payload.pop("telemetry", None)
    cell = CampaignCell(**payload)
    emit(
        telemetry,
        {
            "type": "job.start",
            "index": cell.index,
            "workload": cell.workload,
            "config": cell.config_label,
            "seed": cell.seed,
        },
    )
    system = None
    try:
        cfg = cell.build_config()
        if bundle_dir is not None:
            cfg.obs.bundle_dir = bundle_dir
        cfg.obs = cfg.obs.disabled()
        system = UvmSystem(cfg)
        beat = HeartbeatThread(
            telemetry, cell.index, lambda: len(system.driver.log)
        )
        with beat:
            result = WORKLOAD_REGISTRY[cell.workload]().run(system)
        summary = summarize_run(system, result)
    except Exception as exc:
        bundle = getattr(system, "engine", None) and system.engine.last_bundle
        summary = {
            "failed": True,
            "error_type": type(exc).__name__,
            "error": str(exc),
            "bundle": str(bundle) if bundle else None,
        }
        emit(
            telemetry,
            {
                "type": "job.failed",
                "index": cell.index,
                "error": summary["error_type"],
                "bundle": summary["bundle"],
            },
        )
        return summary
    emit(
        telemetry,
        {
            "type": "job.done",
            "index": cell.index,
            "batches": summary["batches"],
            "clock_usec": summary["clock_usec"],
        },
    )
    return summary


def summarize_run(system, result) -> dict:
    """Deterministic summary of one workload run (the cached cell value)."""
    records = result.records
    resilience = {
        name: sum(getattr(r, name) for r in records)
        for name in _RESILIENCE_COUNTERS
    }
    resilience.update(system.engine.counters.as_dict())
    return {
        "clock_usec": system.clock.now,
        "total_time_usec": result.total_time_usec,
        "kernel_time_usec": result.kernel_time_usec,
        "batch_time_usec": result.batch_time_usec,
        "batches": result.num_batches,
        "faults": result.total_faults,
        "faults_unique": sum(r.num_faults_unique for r in records),
        "pages_h2d": sum(r.pages_migrated_h2d for r in records),
        "pages_populated": sum(r.pages_populated for r in records),
        "pages_prefetched": sum(r.pages_prefetched for r in records),
        "pages_evicted": sum(r.pages_evicted for r in records),
        "evictions": sum(r.evictions for r in records),
        "bytes_h2d": sum(r.bytes_h2d for r in records),
        "bytes_d2h": sum(r.bytes_d2h for r in records),
        "resilience": resilience,
    }


def _make_row(cell: CampaignCell, summary: dict) -> dict:
    row = {
        "index": cell.index,
        "workload": cell.workload,
        "config": cell.config_label,
        "seed": cell.seed,
    }
    if summary.get("failed"):
        row["status"] = "failed"
        row["error"] = {
            "type": summary["error_type"],
            "message": summary["error"],
        }
        row["bundle"] = summary.get("bundle")
    else:
        row["status"] = "ok"
        row["result"] = summary
    return row


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    bundle_dir: Optional[str] = None,
    monitor=None,
) -> CampaignOutcome:
    """Run every cell of ``spec``; rows come back in spec order.

    ``bundle_dir`` arms per-cell crash-bundle forensics (cell ``i`` writes
    under ``<bundle_dir>/cell-<i>``).  ``monitor`` is an optional
    :class:`~repro.campaign.telemetry.CampaignMonitor`: workers stream
    lifecycle events onto its queue and the runner polls it while the pool
    works.  Neither changes the merged rows — telemetry is a side-channel
    and bundle paths are a pure function of the spec — so byte-identity
    across worker counts and cache temperatures holds with both on.
    """
    rows: List[Optional[dict]] = [None] * len(spec.cells)
    pending: List[Tuple[CampaignCell, Optional[str]]] = []
    for cell in spec.cells:
        key = None
        if cache is not None:
            key = cache_key(cell.workload, cell.seed, cell.build_config())
            entry = cache.get(key)
            if entry is not None:
                rows[cell.index] = _make_row(cell, entry["result"])
                continue
        pending.append((cell, key))

    telemetry = monitor.queue if monitor is not None else None
    if monitor is not None:
        telemetry_emit(
            telemetry,
            {
                "type": "campaign.start",
                "name": spec.name,
                "cells": len(spec.cells),
                "cached": len(spec.cells) - len(pending),
            },
        )
        monitor.poll()

    if pending:
        payloads = [
            {
                "index": cell.index,
                "workload": cell.workload,
                "config_label": cell.config_label,
                "seed": cell.seed,
                "overrides": cell.overrides,
                "bundle_dir": os.path.join(bundle_dir, f"cell-{cell.index}")
                if bundle_dir is not None
                else None,
                "telemetry": telemetry,
            }
            for cell, _ in pending
        ]
        if jobs <= 1 or len(pending) == 1:
            summaries = []
            for payload in payloads:
                summaries.append(_execute_cell(payload))
                if monitor is not None:
                    monitor.poll()
        else:
            with multiprocessing.Pool(processes=min(jobs, len(pending))) as pool:
                async_result = pool.map_async(_execute_cell, payloads)
                while monitor is not None and not async_result.ready():
                    monitor.poll()
                    async_result.wait(0.25)
                summaries = async_result.get()
        for (cell, key), summary in zip(pending, summaries):
            rows[cell.index] = _make_row(cell, summary)
            if cache is not None and key is not None and not summary.get("failed"):
                cache.put(key, {"result": summary})

    if monitor is not None:
        telemetry_emit(
            telemetry,
            {
                "type": "campaign.done",
                "hits": cache.hits if cache is not None else 0,
                "misses": cache.misses
                if cache is not None
                else len(spec.cells),
                "failed": sum(
                    1 for row in rows if row and row.get("status") == "failed"
                ),
            },
        )
        monitor.poll()

    return CampaignOutcome(
        spec=spec,
        rows=rows,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else len(spec.cells),
    )


def to_ndjson(rows: List[dict]) -> str:
    """Canonical NDJSON: one sorted-key, compact JSON object per row.

    This is the byte-identity surface — same spec, same sources ⇒ same
    bytes, whatever the worker count or cache temperature.
    """
    return "".join(
        json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
        for row in rows
    )
