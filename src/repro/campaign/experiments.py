"""The result cache wrapped around the figure/table experiment registry.

Experiments return :class:`~repro.analysis.experiments.ExperimentResult`
objects whose ``data`` payloads hold numpy arrays and non-string keys, so
cached entries are pickled blobs rather than JSON documents.  The cache key
covers the experiment id, its keyword arguments, and the package code
version — any source change recomputes every figure.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from typing import Optional

from .cache import ResultCache, code_version


def _experiment_key(exp_id: str, kwargs: dict) -> str:
    doc = {
        "experiment": exp_id,
        "kwargs": kwargs,
        "code": code_version(),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_experiment_cached(exp_id: str, cache_dir: Optional[str] = None, **kwargs):
    """Run a registered experiment, memoized on disk under ``cache_dir``.

    With ``cache_dir=None`` this is exactly ``run_experiment``.  A corrupt
    or stale-format cached blob is treated as a miss and recomputed.
    """
    from ..analysis.experiments import run_experiment

    if cache_dir is None:
        return run_experiment(exp_id, **kwargs)
    cache = ResultCache(cache_dir)
    key = _experiment_key(exp_id, kwargs)
    blob = cache.get_blob(key)
    if blob is not None:
        try:
            return pickle.loads(blob)
        except Exception:
            cache.hits -= 1
            cache.misses += 1
    result = run_experiment(exp_id, **kwargs)
    cache.put_blob(key, pickle.dumps(result, pickle.HIGHEST_PROTOCOL))
    return result
