"""Persistent SQLite run ledger: per-job state, attempts, and transitions.

The ledger is what makes a campaign *restartable as a unit of work* instead
of a process: every job's state machine (``pending → running → done|failed``
with retries looping back through ``pending``) is committed as it happens,
so a coordinator that dies — power cut, OOM kill, Ctrl-C — leaves behind an
exact record of what finished, what was mid-flight, and where each job's
latest engine checkpoint lives.  ``uvm-repro campaign --resume`` replays
that record: ``done`` rows are emitted verbatim (their canonical JSON is
stored, preserving byte-identity of the merged NDJSON), stale ``running``
rows are marked failed with class ``interrupt`` (the orchestrator-postmortem
rule: a coordinator restart must never trust in-flight state it cannot
observe), and everything else runs again — from its checkpoint when one
exists.

Single-writer by design: only the coordinator process touches the ledger
(workers write checkpoint *files* and emit telemetry; the coordinator folds
both into SQLite), so there is no cross-process locking to get wrong.

Every row mutation also appends to the ``transitions`` audit table — the
forensic trail chaos tests assert on ("the killed job was retried and
resumed, not rerun from scratch").
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigError
from .spec import CampaignSpec

SCHEMA_VERSION = 1

#: Job states (the ledger's vocabulary; transitions carry finer events).
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    idx INTEGER PRIMARY KEY,
    workload TEXT NOT NULL,
    config TEXT NOT NULL,
    seed INTEGER NOT NULL,
    state TEXT NOT NULL,
    attempts INTEGER NOT NULL DEFAULT 0,
    failure_class TEXT,
    checkpoint_path TEXT,
    checkpoint_batches INTEGER,
    row_json TEXT,
    updated_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS transitions (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    job_idx INTEGER NOT NULL,
    attempt INTEGER NOT NULL,
    event TEXT NOT NULL,
    detail TEXT NOT NULL DEFAULT '',
    at REAL NOT NULL
);
"""


def spec_hash(spec: CampaignSpec) -> str:
    """Stable identity of a campaign spec (name + every expanded cell)."""
    doc = {
        "name": spec.name,
        "cells": [
            {
                "index": cell.index,
                "workload": cell.workload,
                "config": cell.config_label,
                "seed": cell.seed,
                "overrides": cell.overrides,
            }
            for cell in spec.cells
        ],
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class JobInfo:
    """One job row as the coordinator sees it."""

    index: int
    state: str
    attempts: int
    failure_class: Optional[str]
    checkpoint_path: Optional[str]
    checkpoint_batches: Optional[int]
    row: Optional[dict]


class RunLedger:
    """Coordinator-owned persistent record of one campaign's execution."""

    def __init__(self, path) -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        #: Committed mutations (the fleet's ledger-writes metric source).
        self.writes = 0

    # ------------------------------------------------------------ lifecycle

    def begin(self, spec: CampaignSpec, resume: bool = False) -> None:
        """Bind the ledger to ``spec``.

        Fresh runs reset every table.  Resume runs validate the stored spec
        hash (resuming a different sweep into the same ledger would corrupt
        both) and mark stale in-flight rows failed.
        """
        digest = spec_hash(spec)
        stored = self._get_meta("spec_hash")
        if resume:
            if stored is None:
                raise ConfigError(
                    f"ledger {self.path}: nothing to resume (no prior run)"
                )
            if stored != digest:
                raise ConfigError(
                    f"ledger {self.path}: spec hash mismatch — it records a "
                    f"different campaign ({stored[:12]}… vs {digest[:12]}…)"
                )
            self._fail_stale_running()
            return
        with self._conn:
            self._conn.execute("DELETE FROM jobs")
            self._conn.execute("DELETE FROM transitions")
            self._conn.execute("DELETE FROM meta")
            self._conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                [
                    ("spec_hash", digest),
                    ("name", spec.name),
                    ("schema_version", str(SCHEMA_VERSION)),
                    ("created_at", repr(time.time())),
                ],
            )
            now = time.time()
            self._conn.executemany(
                "INSERT INTO jobs (idx, workload, config, seed, state, "
                "attempts, updated_at) VALUES (?, ?, ?, ?, ?, 0, ?)",
                [
                    (c.index, c.workload, c.config_label, c.seed, PENDING, now)
                    for c in spec.cells
                ],
            )
        self.writes += 1

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- queries

    def _get_meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    @property
    def campaign_name(self) -> Optional[str]:
        return self._get_meta("name")

    @property
    def stored_spec_hash(self) -> Optional[str]:
        return self._get_meta("spec_hash")

    def job(self, index: int) -> Optional[JobInfo]:
        row = self._conn.execute(
            "SELECT idx, state, attempts, failure_class, checkpoint_path, "
            "checkpoint_batches, row_json FROM jobs WHERE idx = ?",
            (index,),
        ).fetchone()
        return self._to_info(row) if row else None

    def jobs(self) -> List[JobInfo]:
        rows = self._conn.execute(
            "SELECT idx, state, attempts, failure_class, checkpoint_path, "
            "checkpoint_batches, row_json FROM jobs ORDER BY idx"
        ).fetchall()
        return [self._to_info(row) for row in rows]

    def completed_rows(self) -> Dict[int, dict]:
        """``{index: merged row}`` for every job already ``done`` — the rows
        a resume emits verbatim (stored canonical JSON round-trips to the
        same bytes under the runner's sorted/compact dump)."""
        out: Dict[int, dict] = {}
        for info in self.jobs():
            if info.state == DONE and info.row is not None:
                out[info.index] = info.row
        return out

    def transitions(self, index: Optional[int] = None) -> List[dict]:
        """The audit trail, oldest first (optionally for one job)."""
        if index is None:
            rows = self._conn.execute(
                "SELECT job_idx, attempt, event, detail, at FROM transitions "
                "ORDER BY seq"
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT job_idx, attempt, event, detail, at FROM transitions "
                "WHERE job_idx = ? ORDER BY seq",
                (index,),
            ).fetchall()
        return [
            {
                "index": r[0],
                "attempt": r[1],
                "event": r[2],
                "detail": r[3],
                "at": r[4],
            }
            for r in rows
        ]

    @staticmethod
    def _to_info(row) -> JobInfo:
        return JobInfo(
            index=row[0],
            state=row[1],
            attempts=row[2],
            failure_class=row[3],
            checkpoint_path=row[4],
            checkpoint_batches=row[5],
            row=json.loads(row[6]) if row[6] else None,
        )

    # ----------------------------------------------------------- mutations

    def _event(self, index: int, attempt: int, event: str, detail: str) -> None:
        self._conn.execute(
            "INSERT INTO transitions (job_idx, attempt, event, detail, at) "
            "VALUES (?, ?, ?, ?, ?)",
            (index, attempt, event, detail, time.time()),
        )

    def _update(self, index: int, **fields) -> None:
        fields["updated_at"] = time.time()
        keys = sorted(fields)
        sql = ", ".join(f"{k} = ?" for k in keys)
        self._conn.execute(
            f"UPDATE jobs SET {sql} WHERE idx = ?",
            [fields[k] for k in keys] + [index],
        )

    def job_started(self, index: int, attempt: int, resume: bool) -> None:
        with self._conn:
            self._update(index, state=RUNNING, attempts=attempt)
            self._event(
                index, attempt, "start", "resume" if resume else "scratch"
            )
        self.writes += 1

    def job_checkpoint(self, index: int, attempt: int, path: str,
                       batches: int) -> None:
        with self._conn:
            self._update(
                index, checkpoint_path=path, checkpoint_batches=batches
            )
            self._event(index, attempt, "checkpoint", f"batches={batches}")
        self.writes += 1

    def job_resumed(self, index: int, attempt: int, batches: int) -> None:
        with self._conn:
            self._event(index, attempt, "resume", f"batches={batches}")
        self.writes += 1

    def job_killed(self, index: int, attempt: int, sig: str) -> None:
        with self._conn:
            self._event(index, attempt, "kill", sig)
        self.writes += 1

    def job_retry(self, index: int, attempt: int, failure_class: str,
                  detail: str, backoff_sec: float) -> None:
        with self._conn:
            self._update(index, state=PENDING, failure_class=failure_class)
            self._event(
                index,
                attempt,
                "retry",
                f"{failure_class}: {detail} (backoff {backoff_sec:.2f}s)",
            )
        self.writes += 1

    def job_done(self, index: int, attempt: int, row: dict) -> None:
        with self._conn:
            self._update(
                index,
                state=DONE,
                failure_class=None,
                row_json=_canonical(row),
            )
            self._event(index, attempt, "done", "")
        self.writes += 1

    def job_cached(self, index: int, row: dict) -> None:
        with self._conn:
            self._update(index, state=DONE, row_json=_canonical(row))
            self._event(index, 0, "done", "cache")
        self.writes += 1

    def job_failed(self, index: int, attempt: int, failure_class: str,
                   row: Optional[dict], detail: str = "") -> None:
        with self._conn:
            self._update(
                index,
                state=FAILED,
                failure_class=failure_class,
                row_json=_canonical(row) if row is not None else None,
            )
            self._event(index, attempt, "failed", f"{failure_class}: {detail}")
        self.writes += 1

    def _fail_stale_running(self) -> None:
        """A restarted coordinator cannot trust rows it left in-flight."""
        stale = self._conn.execute(
            "SELECT idx, attempts FROM jobs WHERE state = ?", (RUNNING,)
        ).fetchall()
        if not stale:
            return
        with self._conn:
            for idx, attempts in stale:
                self._update(idx, state=FAILED, failure_class="interrupt")
                self._event(
                    idx,
                    attempts,
                    "stale-failed",
                    "in-flight at coordinator restart",
                )
        self.writes += 1


def _canonical(row: dict) -> str:
    """The exact byte form the merged NDJSON uses (minus the newline), so a
    stored row re-emits identically on resume."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))
