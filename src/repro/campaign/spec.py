"""Campaign specs: ordered experiment cells from a declarative JSON sweep.

A spec is either a cartesian product::

    {
      "name": "smoke",
      "workloads": ["vecadd", "stream"],
      "configs": [
        {"label": "base", "overrides": {}},
        {"label": "no-prefetch", "overrides": {"driver.prefetch_enabled": false}}
      ],
      "seeds": [0, 1, 2, 3],
      "base_overrides": {"gpu.memory_bytes": 33554432}
    }

or an explicit run list (``"runs": [{"workload": ..., "seed": ...,
"label": ..., "overrides": {...}}, ...]``).  Expansion order is fixed —
workload-major, then config, then seed (or run-list order) — and each cell
carries its position, so merged campaign output is a pure function of the
spec regardless of how the cells were scheduled.

Overrides are dotted config paths applied over :func:`repro.config
.default_config` by :func:`repro.config.apply_config_overrides`; a cell's
effective overrides are ``base_overrides`` merged under the config's (the
config wins on conflicts).  Every cell's config is built and validated at
expansion time, so a broken spec fails before any worker starts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from ..config import SystemConfig, apply_config_overrides, default_config
from ..errors import ConfigError


@dataclass
class CampaignCell:
    """One (workload, config, seed) point of a campaign, at a fixed index."""

    index: int
    workload: str
    config_label: str
    seed: int
    #: Merged dotted-path overrides (base + per-config), ready to apply.
    overrides: Dict[str, object] = field(default_factory=dict)

    def build_config(self) -> SystemConfig:
        """The cell's validated :class:`SystemConfig` (fresh instance)."""
        cfg = default_config()
        apply_config_overrides(cfg, self.overrides)
        cfg.seed = self.seed
        return cfg


@dataclass
class CampaignSpec:
    """A named, ordered list of campaign cells."""

    name: str
    cells: List[CampaignCell]

    @classmethod
    def from_file(cls, path) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as fh:
            try:
                doc = json.load(fh)
            except ValueError as exc:
                raise ConfigError(f"campaign spec {path}: invalid JSON ({exc})")
        return cls.from_dict(doc)

    @classmethod
    def from_dict(cls, doc: dict) -> "CampaignSpec":
        if not isinstance(doc, dict):
            raise ConfigError("campaign spec must be a JSON object")
        name = doc.get("name")
        if not isinstance(name, str) or not name:
            raise ConfigError("campaign spec needs a non-empty 'name'")
        if "runs" in doc and "workloads" in doc:
            raise ConfigError(
                "campaign spec takes either 'runs' or 'workloads', not both"
            )
        base = doc.get("base_overrides", {})
        if not isinstance(base, dict):
            raise ConfigError("'base_overrides' must be an object")
        if "runs" in doc:
            cells = _expand_runs(doc["runs"], base)
        else:
            cells = _expand_product(doc, base)
        if not cells:
            raise ConfigError(f"campaign {name!r} expands to zero cells")
        _check_cells(cells)
        return cls(name=name, cells=cells)


def _expand_product(doc: dict, base: dict) -> List[CampaignCell]:
    workloads = doc.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        raise ConfigError("campaign spec needs a non-empty 'workloads' list")
    configs = doc.get("configs", [{"label": "base", "overrides": {}}])
    if not isinstance(configs, list) or not configs:
        raise ConfigError("'configs' must be a non-empty list")
    seeds = doc.get("seeds", [0])
    if not isinstance(seeds, list) or not seeds:
        raise ConfigError("'seeds' must be a non-empty list")
    labels = set()
    parsed = []
    for entry in configs:
        if not isinstance(entry, dict) or "label" not in entry:
            raise ConfigError("each config needs a 'label'")
        label = entry["label"]
        if label in labels:
            raise ConfigError(f"duplicate config label {label!r}")
        labels.add(label)
        overrides = entry.get("overrides", {})
        if not isinstance(overrides, dict):
            raise ConfigError(f"config {label!r}: 'overrides' must be an object")
        merged = dict(base)
        merged.update(overrides)
        parsed.append((label, merged))
    cells = []
    for workload in workloads:
        for label, overrides in parsed:
            for seed in seeds:
                cells.append(
                    CampaignCell(
                        index=len(cells),
                        workload=workload,
                        config_label=label,
                        seed=int(seed),
                        overrides=dict(overrides),
                    )
                )
    return cells


def _expand_runs(runs, base: dict) -> List[CampaignCell]:
    if not isinstance(runs, list):
        raise ConfigError("'runs' must be a list")
    cells = []
    for entry in runs:
        if not isinstance(entry, dict) or "workload" not in entry:
            raise ConfigError("each run needs a 'workload'")
        overrides = entry.get("overrides", {})
        if not isinstance(overrides, dict):
            raise ConfigError("run 'overrides' must be an object")
        merged = dict(base)
        merged.update(overrides)
        cells.append(
            CampaignCell(
                index=len(cells),
                workload=entry["workload"],
                config_label=entry.get("label", "base"),
                seed=int(entry.get("seed", 0)),
                overrides=merged,
            )
        )
    return cells


def _check_cells(cells: List[CampaignCell]) -> None:
    """Fail fast: workloads exist and every config builds + validates."""
    from ..workloads import WORKLOAD_REGISTRY

    for cell in cells:
        if cell.workload not in WORKLOAD_REGISTRY:
            raise ConfigError(
                f"cell {cell.index}: unknown workload {cell.workload!r} "
                f"(known: {', '.join(sorted(WORKLOAD_REGISTRY))})"
            )
    seen = {}
    for cell in cells:
        key = (cell.workload, cell.config_label, cell.seed)
        if key in seen:
            raise ConfigError(
                f"cells {seen[key]} and {cell.index} are the same run "
                f"{key!r} — campaign output would be ambiguous"
            )
        seen[key] = cell.index
        cell.build_config()  # raises ConfigError on a bad override
