"""Supervised campaign fleet: coordinator-owned workers, liveness enforcement.

The PR 4 campaign runner fanned cells across ``multiprocessing.Pool`` — fine
until a worker wedged (the whole sweep stalled behind ``map_async``), died
(the pool raised away every finished row), or the user hit Ctrl-C (leaked
children, lost results).  This module replaces the pool with an explicit
coordinator/worker design, the same shape as the orchestrator postmortems in
the related Headless-Wan2GP repo recommend after meeting those failure modes
in production:

* the coordinator spawns worker *processes* directly and owns their whole
  lifecycle — dispatch, liveness, replacement, shutdown;
* workers stream the PR 6 telemetry heartbeats; the coordinator *enforces*
  them — heartbeat silence past the stall timeout escalates SIGTERM →
  (grace) → SIGKILL, and the dead worker is replaced;
* every failure is classified (``crash``, ``hang``, ``oom``, ``injected``,
  ``interrupt``, ``error``) and fed to a bounded :class:`FleetRetryPolicy`
  — the PR 3 driver backoff semantics lifted to wall-clock scale — before a
  row is finally marked ``status: failed``;
* attempts after the first resume from the cell's latest engine checkpoint
  (:mod:`repro.campaign.worker`) instead of rerunning from scratch, and
  every state transition lands in the :mod:`repro.campaign.ledger`.

Channel safety note: worker→coordinator channels (telemetry, results) are
*manager* queues, not shared-lock ``multiprocessing.Queue``s, deliberately —
a worker SIGKILLed or SIGSTOPped mid-``put`` on a shared-lock queue can
strand the lock and silence every other worker's heartbeats, which the
coordinator would misread as a mass stall.  Manager proxies give each
client its own connection, so one frozen worker cannot jam the channel.
Per-worker task queues are plain queues: the coordinator is their only
producer and is never killed mid-put.

The merged-row contract is unchanged from the pool: rows are a pure
function of the spec, so the NDJSON is byte-identical for any worker
count, kill pattern, or resume path.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import UvmError
from ..obs.metrics import MetricsRegistry
from .ledger import RunLedger
from .spec import CampaignCell
from .telemetry import HEARTBEAT_INTERVAL_SEC, CampaignMonitor, emit
from .worker import (
    DEFAULT_CHECKPOINT_EVERY,
    checkpoint_path,
    classify_error_type,
    discard_cell_checkpoint,
    execute_cell,
    make_row,
)


class CampaignInterrupted(UvmError):
    """Ctrl-C (or SIGINT) stopped the campaign before every cell resolved.

    Carries the partial row list (``None`` holes for unresolved cells); by
    the time this is raised, finished rows are in the ledger, in-flight jobs
    are marked failed with class ``interrupt``, and every worker process has
    been terminated — nothing leaks.
    """

    def __init__(self, rows: List[Optional[dict]]) -> None:
        self.rows = rows
        done = sum(1 for row in rows if row is not None)
        super().__init__(
            f"campaign interrupted: {done}/{len(rows)} cells resolved"
        )


@dataclass(frozen=True)
class FleetRetryPolicy:
    """Bounded wall-clock exponential backoff for failed campaign jobs.

    Same backoff law as the PR 3 driver :class:`~repro.core.driver
    .RetryPolicy` (``min(base * factor**(n-1), max)``), but in host seconds
    between *attempts of a whole job* rather than simulated microseconds
    between fault-path retries.  ``retry_on`` names the failure classes
    worth retrying: process deaths and OOM-like failures are plausibly
    transient; deterministic simulation errors (``injected``, ``error``)
    would fail identically every attempt, and ``interrupt`` means the user
    asked to stop.
    """

    max_attempts: int = 3
    backoff_base_sec: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_sec: float = 10.0
    retry_on: frozenset = frozenset({"crash", "hang", "oom"})

    def backoff_sec(self, attempt: int) -> float:
        """Backoff after failed attempt number ``attempt`` (1-based)."""
        return min(
            self.backoff_base_sec * self.backoff_factor ** (attempt - 1),
            self.backoff_max_sec,
        )

    def should_retry(self, failure_class: str, attempts: int) -> bool:
        return failure_class in self.retry_on and attempts < self.max_attempts


@dataclass
class FleetChaos:
    """The fleet's own fault-injection harness: worker-process failures.

    ``kill_at[i] = b`` SIGKILLs the worker running cell ``i`` when it
    completes batch ``b``; ``hang_at[i] = b`` SIGSTOPs it there instead so
    the stall detector has a real hang to escalate against.  One-shot by
    construction: the harness arms only a job's *first* attempt, mirroring
    the PR 3 injector's one-shot engine crashes.
    """

    kill_at: Dict[int, int] = field(default_factory=dict)
    hang_at: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def parse(cls, kill_specs=(), hang_specs=()) -> "FleetChaos":
        """Build from CLI ``INDEX:BATCH`` strings (raises ValueError)."""

        def parse_all(specs) -> Dict[int, int]:
            out: Dict[int, int] = {}
            for text in specs:
                idx, sep, batch = str(text).partition(":")
                if not sep:
                    raise ValueError(
                        f"chaos spec {text!r} is not INDEX:BATCH"
                    )
                out[int(idx)] = int(batch)
            return out

        return cls(kill_at=parse_all(kill_specs), hang_at=parse_all(hang_specs))

    @property
    def empty(self) -> bool:
        return not self.kill_at and not self.hang_at


@dataclass
class FleetConfig:
    """Coordinator knobs (CLI flags map onto these one-to-one)."""

    retry: FleetRetryPolicy = field(default_factory=FleetRetryPolicy)
    #: Heartbeat silence before escalation starts; None disables enforcement.
    stall_timeout_sec: Optional[float] = 30.0
    #: SIGTERM → SIGKILL escalation grace.
    term_grace_sec: float = 5.0
    heartbeat_sec: float = HEARTBEAT_INTERVAL_SEC
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    checkpoint_dir: Optional[str] = None
    chaos: Optional[FleetChaos] = None
    poll_interval_sec: float = 0.05


# ----------------------------------------------------------- worker process


def _worker_main(wid: int, task_q, result_q, telemetry_q) -> None:
    """Worker loop: pull payloads until the ``None`` sentinel.

    SIGINT is ignored — a terminal Ctrl-C hits the whole process group, and
    shutdown authority belongs to the coordinator alone (it TERMs workers
    after draining, instead of every child dying mid-write on its own).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            payload = task_q.get()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if payload is None:
            return
        payload = dict(payload)
        payload["telemetry"] = telemetry_q
        index = payload["index"]
        summary = execute_cell(payload)
        try:
            result_q.put({"worker": wid, "index": index, "summary": summary})
        except Exception:
            return


class _WorkerHandle:
    """Coordinator-side view of one worker process."""

    def __init__(self, wid: int, ctx, result_q, telemetry_q) -> None:
        self.wid = wid
        self.task_q = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(wid, self.task_q, result_q, telemetry_q),
            name=f"uvm-fleet-{wid}",
            daemon=True,
        )
        self.process.start()
        #: Index of the job this worker is running (None = idle).
        self.job: Optional[int] = None
        self.dispatched_at: float = 0.0  # dim: [wall]
        self.termed_at: Optional[float] = None  # dim: [wall]
        self.kill_reason: Optional[str] = None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def send(self, payload: dict) -> None:
        self.job = payload["index"]
        self.dispatched_at = time.monotonic()
        self.termed_at = None
        self.kill_reason = None
        self.task_q.put(payload)

    def signal(self, sig: int) -> bool:
        try:
            os.kill(self.process.pid, sig)
            return True
        except (ProcessLookupError, OSError):
            return False

    def shutdown(self, grace_sec: float = 1.0) -> None:
        """Sentinel, then escalate; always reaps the process."""
        try:
            if self.alive:
                self.task_q.put(None)
        except Exception:
            pass
        self.process.join(grace_sec)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(0.5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(0.5)
        try:
            self.task_q.close()
            self.task_q.cancel_join_thread()
        except Exception:
            pass


# ------------------------------------------------------------- coordinator


@dataclass
class _JobSlot:
    """Coordinator-side scheduling state for one unresolved cell."""

    cell: CampaignCell
    cache_key: Optional[str]
    run_attempts: int = 0
    base_attempts: int = 0
    next_eligible: float = 0.0  # dim: [wall]

    @property
    def attempt_no(self) -> int:
        """Ledger-visible attempt number (cumulative across coordinators)."""
        return self.base_attempts + self.run_attempts


class FleetCoordinator:
    """Runs pending campaign cells across supervised worker processes."""

    def __init__(
        self,
        pending: List[Tuple[CampaignCell, Optional[str]]],
        rows: List[Optional[dict]],
        jobs: int,
        config: FleetConfig,
        cache=None,
        bundle_dir: Optional[str] = None,
        monitor: Optional[CampaignMonitor] = None,
        ledger: Optional[RunLedger] = None,
    ) -> None:
        self.config = config
        self.rows = rows
        self.cache = cache
        self.bundle_dir = bundle_dir
        self.monitor = monitor
        self.ledger = ledger
        self.jobs = max(1, jobs)
        self.slots: Dict[int, _JobSlot] = {
            cell.index: _JobSlot(cell=cell, cache_key=key)
            for cell, key in pending
        }
        if ledger is not None:
            for info in ledger.jobs():
                if info.index in self.slots:
                    self.slots[info.index].base_attempts = info.attempts
        self._unresolved = set(self.slots)
        self._ready: List[int] = sorted(self.slots)
        self._busy: Dict[int, _WorkerHandle] = {}
        self._workers: List[_WorkerHandle] = []
        self._next_wid = 0
        self._ctx = multiprocessing.get_context()
        self._manager = self._ctx.Manager()
        self._result_q = self._manager.Queue()
        self._telemetry_q = self._manager.Queue()
        # Fleet self-observation: registered here, declared (with units) in
        # repro.obs.catalog — the metric-drift pass checks both directions.
        self.metrics = MetricsRegistry()
        self._m_retries = self.metrics.counter(
            "uvm_fleet_retries_total",
            "Fleet-level job retries by failure class",
            labels=("class",),
        )
        self._m_kills = self.metrics.counter(
            "uvm_fleet_kills_total",
            "Worker kill escalations by signal",
            labels=("signal",),
        )
        self._m_resumes = self.metrics.counter(
            "uvm_fleet_resumes_total",
            "Jobs resumed from an engine checkpoint",
        )
        self._m_ledger_writes = self.metrics.counter(
            "uvm_fleet_ledger_writes_total",
            "Run-ledger mutations committed",
        )
        self.report = {
            "retries": 0,
            "kills": 0,
            "resumes": 0,
            "worker_deaths": 0,
        }

    # ------------------------------------------------------------- plumbing

    def _ledger_write(self, method: str, *args) -> None:
        if self.ledger is None:
            return
        getattr(self.ledger, method)(*args)
        self._m_ledger_writes.inc()

    def _emit(self, event: dict) -> None:
        if self.monitor is not None:
            emit(self.monitor.queue, event)

    def _checkpoint_file(self, index: int) -> Optional[str]:
        if self.config.checkpoint_dir is None:
            return None
        return checkpoint_path(self.config.checkpoint_dir, index)

    # ------------------------------------------------------------ main loop

    def run(self) -> dict:
        """Drive every pending cell to a row; returns the fleet report."""
        try:
            self._spawn_target()
            while self._unresolved:
                self._pump_telemetry()
                self._reap_results()
                self._reap_deaths()
                self._enforce_liveness()
                self._dispatch()
                if self._unresolved:
                    time.sleep(self.config.poll_interval_sec)
        except KeyboardInterrupt:
            self._interrupt()
            raise CampaignInterrupted(self.rows)
        finally:
            self._shutdown()
        return dict(self.report)

    # ----------------------------------------------------------- scheduling

    def _spawn_worker(self) -> _WorkerHandle:
        handle = _WorkerHandle(
            self._next_wid, self._ctx, self._result_q, self._telemetry_q
        )
        self._next_wid += 1
        self._workers.append(handle)
        self._emit({"type": "worker.spawn", "worker": handle.wid,
                    "pid": handle.process.pid})
        return handle

    def _spawn_target(self) -> None:
        target = min(self.jobs, len(self._unresolved))
        while sum(1 for w in self._workers if w.alive) < target:
            self._spawn_worker()

    def _dispatch(self) -> None:
        now = time.monotonic()
        idle = [w for w in self._workers if w.alive and w.job is None]
        for index in list(self._ready):
            slot = self.slots[index]
            if slot.next_eligible > now:
                continue
            if not idle:
                alive = sum(1 for w in self._workers if w.alive)
                if alive < min(self.jobs, len(self._unresolved)):
                    idle.append(self._spawn_worker())
                else:
                    break
            worker = idle.pop(0)
            self._ready.remove(index)
            slot.run_attempts += 1
            payload = self._build_payload(slot)
            self._ledger_write(
                "job_started", index, slot.attempt_no, bool(payload["resume"])
            )
            self._busy[index] = worker
            worker.send(payload)

    def _build_payload(self, slot: _JobSlot) -> dict:
        cell = slot.cell
        ckpt = self._checkpoint_file(cell.index)
        payload = {
            "index": cell.index,
            "workload": cell.workload,
            "config_label": cell.config_label,
            "seed": cell.seed,
            "overrides": cell.overrides,
            "attempt": slot.attempt_no,
            "bundle_dir": os.path.join(self.bundle_dir, f"cell-{cell.index}")
            if self.bundle_dir is not None
            else None,
            "checkpoint_path": ckpt,
            "checkpoint_every": self.config.checkpoint_every,
            "heartbeat_sec": self.config.heartbeat_sec,
            "resume": ckpt is not None and os.path.exists(ckpt),
            "kill_at_batch": None,
            "hang_at_batch": None,
        }
        chaos = self.config.chaos
        if chaos is not None and slot.run_attempts == 1:
            payload["kill_at_batch"] = chaos.kill_at.get(cell.index)
            payload["hang_at_batch"] = chaos.hang_at.get(cell.index)
        return payload

    # ------------------------------------------------------------ ingestion

    def _pump_telemetry(self) -> None:
        """Forward worker events into the monitor, then act on the drain."""
        if self.monitor is None:
            return
        import queue as queue_mod

        while True:
            try:
                event = self._telemetry_q.get_nowait()
            except queue_mod.Empty:
                break
            except (EOFError, OSError, ConnectionError):
                break
            self.monitor.queue.put(event)
        for event in self.monitor.poll():
            index = event.get("index")
            slot = self.slots.get(index)
            if slot is None:
                continue
            if event["type"] == "job.checkpoint":
                self._ledger_write(
                    "job_checkpoint",
                    index,
                    slot.attempt_no,
                    event.get("path", ""),
                    int(event.get("batches", 0)),
                )
            elif event["type"] == "job.resume":
                self.report["resumes"] += 1
                self._m_resumes.inc()
                self._ledger_write(
                    "job_resumed",
                    index,
                    slot.attempt_no,
                    int(event.get("batches", 0)),
                )

    def _reap_results(self) -> None:
        import queue as queue_mod

        while True:
            try:
                result = self._result_q.get_nowait()
            except queue_mod.Empty:
                break
            except (EOFError, OSError, ConnectionError):
                break
            index = result["index"]
            worker = self._busy.pop(index, None)
            if worker is not None and worker.job == index:
                worker.job = None
            if index not in self._unresolved:
                continue
            summary = result["summary"]
            if summary.get("failed"):
                self._resolve_failure(
                    index,
                    classify_error_type(summary["error_type"]),
                    summary,
                )
            else:
                self._resolve_done(index, summary)

    def _reap_deaths(self) -> None:
        for worker in self._workers:
            if worker.job is None or worker.alive:
                continue
            index = worker.job
            worker.job = None
            self._busy.pop(index, None)
            self.report["worker_deaths"] += 1
            exitcode = worker.process.exitcode
            self._emit({"type": "worker.exit", "worker": worker.wid,
                        "exitcode": exitcode, "index": index})
            if index not in self._unresolved:
                continue
            if worker.kill_reason is not None:
                failure_class, error_type = worker.kill_reason, "WorkerHang"
                detail = (
                    f"stalled past {self.config.stall_timeout_sec}s; "
                    f"escalated (exitcode {exitcode})"
                )
            else:
                failure_class, error_type = "crash", "WorkerCrash"
                detail = f"worker process died (exitcode {exitcode})"
            self._resolve_failure(
                index,
                failure_class,
                {
                    "failed": True,
                    "error_type": error_type,
                    "error": detail,
                    "bundle": None,
                },
            )

    def _enforce_liveness(self) -> None:
        timeout = self.config.stall_timeout_sec
        if timeout is None or self.monitor is None:
            return
        now = time.monotonic()
        for index, worker in list(self._busy.items()):
            if not worker.alive:
                continue
            job_state = self.monitor.progress.running.get(index)
            last_seen = (
                job_state.last_seen if job_state is not None
                else worker.dispatched_at
            )
            if worker.termed_at is not None:
                if now - worker.termed_at >= self.config.term_grace_sec:
                    if worker.signal(signal.SIGKILL):
                        self.report["kills"] += 1
                        self._m_kills.labels("SIGKILL").inc()
                        self._emit({"type": "job.kill", "index": index,
                                    "signal": "SIGKILL"})
                        self._ledger_write(
                            "job_killed",
                            index,
                            self.slots[index].attempt_no,
                            "SIGKILL",
                        )
            elif now - last_seen > timeout:
                worker.kill_reason = "hang"
                worker.termed_at = now
                if worker.signal(signal.SIGTERM):
                    self.report["kills"] += 1
                    self._m_kills.labels("SIGTERM").inc()
                    self._emit({"type": "job.kill", "index": index,
                                "signal": "SIGTERM"})
                    self._ledger_write(
                        "job_killed",
                        index,
                        self.slots[index].attempt_no,
                        "SIGTERM",
                    )

    # ------------------------------------------------------------ resolution

    def _resolve_done(self, index: int, summary: dict) -> None:
        slot = self.slots[index]
        row = make_row(slot.cell, summary)
        self.rows[index] = row
        self._unresolved.discard(index)
        if self.cache is not None and slot.cache_key is not None:
            self.cache.put(slot.cache_key, {"result": summary})
        self._ledger_write("job_done", index, slot.attempt_no, row)
        discard_cell_checkpoint(self._checkpoint_file(index))

    def _resolve_failure(
        self, index: int, failure_class: str, summary: dict
    ) -> None:
        slot = self.slots[index]
        detail = summary.get("error", "")
        if self.config.retry.should_retry(failure_class, slot.run_attempts):
            backoff = self.config.retry.backoff_sec(slot.run_attempts)
            slot.next_eligible = time.monotonic() + backoff
            self._ready.append(index)
            self._ready.sort()
            self.report["retries"] += 1
            self._m_retries.labels(failure_class).inc()
            self._emit({
                "type": "job.retry",
                "index": index,
                "class": failure_class,
                "attempt": slot.attempt_no,
                "error": summary.get("error_type"),
            })
            self._ledger_write(
                "job_retry",
                index,
                slot.attempt_no,
                failure_class,
                detail,
                backoff,
            )
            return
        row = make_row(slot.cell, summary)
        self.rows[index] = row
        self._unresolved.discard(index)
        self._emit({
            "type": "job.failed",
            "index": index,
            "error": summary.get("error_type"),
            "class": failure_class,
            "bundle": summary.get("bundle"),
        })
        self._ledger_write(
            "job_failed", index, slot.attempt_no, failure_class, row, detail
        )

    # ------------------------------------------------------------- shutdown

    def _interrupt(self) -> None:
        """Ctrl-C: persist what finished, mark in-flight, kill children."""
        for index, worker in list(self._busy.items()):
            self._ledger_write(
                "job_failed",
                index,
                self.slots[index].attempt_no,
                "interrupt",
                None,
                "coordinator interrupted",
            )
            worker.signal(signal.SIGTERM)
        deadline = time.monotonic() + 2.0
        for worker in self._workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.signal(signal.SIGKILL)
        if self.monitor is not None:
            self._pump_telemetry()

    def _shutdown(self) -> None:
        for worker in self._workers:
            worker.shutdown()
        try:
            self._pump_telemetry()
        except Exception:
            pass
        try:
            self._manager.shutdown()
        except Exception:
            pass
