"""Simulation kernel: clock, deterministic RNG, and event tracing."""

from .clock import SimClock
from .rng import make_rng, spawn_rng
from .trace import EventTrace, TraceEvent

__all__ = ["SimClock", "make_rng", "spawn_rng", "EventTrace", "TraceEvent"]
