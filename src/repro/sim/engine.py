"""The GPU↔driver orchestration loop.

The paper observes (§6 "Driver Serialization") that "the GPU is generally
stalled during driver fault processing, leading to highly synchronous
behavior between the CPU and GPU with little overlap".  The engine models
that faithfully as an alternation:

* **GPU round** — SMs activate queued warps, advance runnable warps
  (accruing compute time), and issue faults into the hardware buffer subject
  to the µTLB outstanding cap and the per-SM rate throttle.  Faults arrive
  in rapid succession with round-robin interleaving across SMs (Fig 4,
  Table 2's "SMs are served relatively fairly").
* **Driver phase** — the worker fetches *one* batch (up to ``batch_size``),
  services it, then flushes the buffer and issues the replay (§4.2: the
  buffer is flushed before every replay; dropped faults reissue).

The throttle window depends on whether the worker was sleeping: a sleeping
driver leaves a long generation window (interrupt + wake), letting SMs fill
their µTLBs (the 56-fault first batch of Fig 3); a busy driver turns batches
around fast, capping each SM at ``sm_fault_rate_limit`` per window (the
small later batches, and the ~500-unique-fault generation ceiling behind
Fig 9's diminishing returns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..check.sanitizer import make_sanitizer
from ..config import SystemConfig
from ..core.batch_record import BatchRecord
from ..core.driver import ServiceOutcome, UvmDriver
from ..errors import (
    DeadlockError,
    InjectedCrash,
    RetryExhausted,
    SimulationError,
    TransferFault,
    TransferStuck,
    UvmError,
)
from ..gpu.copy_engine import contiguous_runs
from ..inject import make_injector
from ..gpu.device import GpuDevice
from ..gpu.fault import AccessType
from ..gpu.warp import KernelLaunch, WarpState
from ..hostos.cost_model import CostModel
from ..hostos.cpu import HostCpu
from ..hostos.dma import DmaMapper
from ..hostos.host_vm import HostVm
from ..obs import Observability
from ..obs.chrome_trace import PID_SM
from ..units import vablock_of_page
from .checkpoint import EngineCheckpoint
from .clock import SimClock
from .rng import spawn_rng
from .trace import EventTrace


@dataclass
class LaunchResult:
    """Summary of one kernel launch."""

    name: str
    #: Simulated kernel wall time (µs), launch to last warp retired.
    kernel_time_usec: float
    #: Batch records produced during this launch.
    records: List[BatchRecord] = field(default_factory=list)
    #: GPU compute time accrued by warp phases (µs).
    compute_time_usec: float = 0.0
    num_warps: int = 0
    total_faults: int = 0

    @property
    def batch_time_usec(self) -> float:
        """Aggregate batch servicing time (Table 4's "Batch" column)."""
        return sum(r.duration for r in self.records)

    @property
    def num_batches(self) -> int:
        return len(self.records)


@dataclass
class LaunchProgress:
    """Mutable state of an in-flight kernel launch.

    Lives on the engine (not in :meth:`Engine._launch` locals) so a
    checkpoint captures it and a restored engine can :meth:`Engine.resume`
    the launch mid-flight.
    """

    name: str
    num_warps: int
    #: Clock time the launch began (kernel wall time baseline).
    start_time: float
    #: Index into the driver's batch log where this launch's records start.
    first_record: int
    compute_total: float = 0.0
    driver_slept: bool = True
    guard_rounds: int = 0
    done: bool = False


@dataclass
class EngineCounters:
    """Resilience accounting for engine-side (non-batch) fault paths.

    The CPU-touch D2H migration burst retries outside any driver batch, so
    its retries/failovers have no :class:`BatchRecord` to land in.  They
    accumulate here instead and surface through the chaos report and the
    shared ``uvm_retries_total``/``uvm_ce_failovers_total`` metric families.
    Instrumentation, not simulation state: deliberately excluded from
    checkpoints (like metrics, it never rewinds on crash recovery).
    """

    d2h_retries: int = 0
    d2h_failovers: int = 0
    d2h_backoff_usec: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "engine_d2h_retries": self.d2h_retries,
            "engine_d2h_failovers": self.d2h_failovers,
            "engine_d2h_backoff_usec": self.d2h_backoff_usec,
        }


class Engine:
    """Owns the full simulated stack and runs kernels against it."""

    def __init__(
        self,
        config: SystemConfig,
        trace: Optional[EventTrace] = None,
        clock: Optional[SimClock] = None,
        host_vm: Optional[HostVm] = None,
        dma: Optional[DmaMapper] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        """``clock``/``host_vm``/``dma``/``obs`` may be shared across
        engines — the multi-GPU coordinator passes one host-side state (and
        one observability layer, with per-device scoped trace tracks) to
        every device's engine (one host OS, many GPUs, as in real UVM)."""
        config.validate()
        self.config = config
        self.cost = CostModel().apply_overrides(config.cost_overrides)
        self.clock = clock if clock is not None else SimClock()
        self.trace = trace if trace is not None else EventTrace(enabled=False)
        self.obs = obs if obs is not None else Observability(config.obs, self.clock)
        #: Structure-of-arrays fault pipeline (``REPRO_SOA=0`` disables).
        self._soa = config.soa
        self.device = GpuDevice(
            config.gpu,
            copy_bandwidth_bytes_per_usec=self.cost.link_bandwidth_bytes_per_usec,
            copy_latency_usec=self.cost.transfer_latency_usec,
            soa_fault_buffer=self._soa,
        )
        self.host_vm = host_vm if host_vm is not None else HostVm()
        self.host_cpu = HostCpu(config.host)
        self.dma = dma if dma is not None else DmaMapper(self.cost)
        self.rng = spawn_rng(config.seed, "engine")
        if self.obs.any_enabled:
            for ce in self.device.copy_engines:
                ce.attach_obs(self.obs, self.clock)
        if self.obs.sink is not None and self.trace.sink is None:
            self.trace.sink = self.obs.sink
        #: Cached flag so the per-warp hot path never touches the builder.
        self._chrome_on = self.obs.chrome.enabled
        self._pid_sm = self.obs.pid(PID_SM)
        if self._chrome_on:
            for sm_id in range(config.gpu.num_sms):
                self.obs.chrome.set_thread_name(self._pid_sm, sm_id, f"SM {sm_id}")
            self.obs.chrome.set_thread_name(
                self._pid_sm, config.gpu.num_sms, "all SMs (stall)"
            )
        #: UVMSan runtime invariant checker (null object when disabled, so
        #: the hot paths below pay a single attribute read at most).
        self.sanitizer = make_sanitizer(config.check, self.clock, self.obs)
        if self.sanitizer.enabled:
            self.device.fault_buffer.attach_sanitizer(self.sanitizer)
            for ce in self.device.copy_engines:
                ce.attach_sanitizer(self.sanitizer)
            for utlb in self.device.utlbs:
                utlb.attach_sanitizer(self.sanitizer)
        #: Fault injector (null object when chaos testing is off).  Real
        #: injectors are attached to each component so the disabled hot
        #: paths stay branch-free (``_inj is None`` guards, like UVMSan).
        self.injector = make_injector(config.inject, config.seed, self.clock, self.obs)
        self._inject_on = self.injector.enabled
        if self._inject_on:
            self.device.fault_buffer.attach_injector(self.injector)
            for ce in self.device.copy_engines:
                ce.attach_injector(self.injector)
            self.dma.attach_injector(self.injector)
        #: Flight recorder (black box): a null object when off, so hooks on
        #: the paths below cost one no-op call at most.
        self.flight = self.obs.flight
        if self.flight.enabled:
            for ce in self.device.copy_engines:
                ce.attach_flight(self.flight)
        #: Where the latest crash bundle landed (None until a crash writes
        #: one; see :meth:`_capture_bundle`).
        self.last_bundle = None  # snapshot: skip — diagnostics, not sim state
        metrics = self.obs.metrics
        self._m_kernels = metrics.counter("uvm_kernels_total", "Kernel launches run")
        self._m_kernel_usec = metrics.histogram(
            "uvm_kernel_time_usec", "Kernel wall time (simulated µs)"
        )
        self._m_rounds = metrics.counter(
            "uvm_engine_rounds_total", "GPU fault-generation rounds"
        )
        self._m_bundles = metrics.counter(
            "uvm_bundles_written_total", "Crash bundles written"
        )
        #: Engine-side resilience counters (no BatchRecord on these paths).
        self.counters = EngineCounters()
        # Shared with the driver's families (same name + help → the registry
        # returns the same family object to both).
        self._m_retries_ce = metrics.counter(
            "uvm_retries_total",
            "Driver retries after transient fault-path failures",
            labels=("site",),
        ).labels("ce")
        self._m_failovers = metrics.counter(
            "uvm_ce_failovers_total", "Copy-engine failovers after stuck bursts"
        )
        self.driver = UvmDriver(
            config=config,
            device=self.device,
            clock=self.clock,
            host_vm=self.host_vm,
            dma=self.dma,
            cost_model=self.cost,
            rng=spawn_rng(config.seed, "driver-jitter"),
            trace=self.trace,
            obs=self.obs,
            sanitizer=self.sanitizer,
            injector=self.injector,
        )
        #: page → warps blocked on it.
        self._waiters: Dict[int, List[WarpState]] = {}
        self._warps: Dict[int, WarpState] = {}
        self._prefetch_queue: List[Tuple[int, int]] = []  # (sm_id, page)
        self._uid = 0
        self._last_retire_at = 0.0
        self._window_start = 0.0
        #: Hit-aware eviction policies need warps to report in-memory hits.
        self._hit_aware_eviction = config.driver.eviction_policy == "access-counter"
        #: In-flight launch state (checkpointable); None outside a launch.
        self._progress: Optional[LaunchProgress] = None
        #: Latest auto-checkpoint (crash-recovery restore target).
        self._auto_checkpoint = None  # snapshot: skip — the checkpoint itself
        #: Test/tooling hooks called as ``hook(engine, batch_id)`` after
        #: every serviced batch (checkpoint property tests attach here).
        self._batch_hooks: List[Callable[["Engine", int], None]] = []


    # -------------------------------------------------------------- helpers

    def _next_uid(self) -> int:
        self._uid += 1
        return self._uid

    # ---------------------------------------------------------- host phases

    def host_touch(
        self,
        pages: Iterable[int],
        thread_of: Optional[Callable[[int], int]] = None,
    ) -> None:
        """A CPU phase touches managed ``pages`` (global page ids).

        Device-resident pages migrate back (CPU-side faulting), and the
        pages become host-mapped — arming the next GPU touch of their blocks
        with an ``unmap_mapping_range()`` cost (§4.4).  ``thread_of`` maps a
        global page id to the touching CPU thread (default: thread 0).
        """
        pages = list(pages)
        if not pages:
            return
        if thread_of is None:
            thread_of = lambda page: 0
        try:
            with self.obs.span("engine.host_touch", "engine", pages=len(pages)):
                is_remote = self.driver.is_remote_mapped
                resident = [
                    p
                    for p in pages
                    if self.device.page_table.is_resident(p) and not is_remote(p)
                ]
                if resident:
                    resident.sort()
                    self.clock.advance(self._d2h_with_retry(contiguous_runs(resident)))
                    self.device.page_table.unmap_pages(resident)
                    for page in resident:
                        block = self.driver.vablocks.get_for_page(page)
                        block.resident_pages.discard(page)
                    self.host_vm.mark_valid(resident)
                self.host_vm.cpu_touch(pages, thread_of)
                self.clock.advance(self.host_cpu.touch_cost_usec(len(pages)))
        except UvmError as exc:
            self._capture_bundle(exc)
            raise

    def _d2h_with_retry(self, run_lengths) -> float:
        """CPU-side fault migration burst with the driver's retry policy.

        The data must come back (the CPU touch reads it), so exhaustion
        raises :class:`repro.errors.RetryExhausted` in both failure modes;
        stuck bursts fail over to the sibling engine like the driver does.
        Retry overhead is charged straight to the clock and accounted in
        :attr:`counters` (there is no batch record on this path); the shared
        ``uvm_retries_total{site="ce"}``/``uvm_ce_failovers_total`` families
        tick too, mirroring the driver's convention (transient fault →
        retry, stuck → failover only).
        """
        ce = self.device.copy_engines[self.driver._active_ce_id]
        retry = self.driver.retry
        counters = self.counters
        attempt = 1
        while True:
            try:
                return ce.device_to_host(run_lengths)
            except TransferFault as exc:
                self.clock.advance(exc.wasted_usec)
                counters.d2h_backoff_usec += exc.wasted_usec
                counters.d2h_retries += 1
                self._m_retries_ce.inc()
                self.flight.record("retry", "ce", attempt)
                if attempt >= retry.max_attempts:
                    raise RetryExhausted("ce.transfer_fault", attempt, exc)
                backoff = retry.backoff_usec(attempt)
                self.clock.advance(backoff)
                counters.d2h_backoff_usec += backoff
            except TransferStuck as exc:
                self.clock.advance(retry.deadline_usec)
                counters.d2h_backoff_usec += retry.deadline_usec
                counters.d2h_failovers += 1
                self._m_failovers.inc()
                self.flight.record("failover", "ce", attempt)
                if attempt >= retry.max_attempts:
                    raise RetryExhausted("ce.stuck", attempt, exc)
                ce = self.device.sibling_of(ce)
            attempt += 1

    # -------------------------------------------------------------- launch

    def launch(self, kernel: KernelLaunch) -> LaunchResult:
        """Run a kernel to completion; returns its launch summary.

        A launch that dies with a :class:`~repro.errors.UvmError` (retry
        exhaustion, raise-mode invariant violation, unrecovered injected
        crash, deadlock) writes a crash bundle on the way out when
        ``config.obs.bundle_dir`` is set; the exception then propagates
        unchanged.
        """
        t0 = self.clock.now
        self.flight.record("launch", kernel.name, len(kernel.programs))
        try:
            with self.obs.span("engine.launch", "engine", kernel=kernel.name):
                result = self._launch(kernel)
        except UvmError as exc:
            self._capture_bundle(exc)
            raise
        self.flight.record("launch.done", kernel.name, result.num_batches)
        self._m_kernels.inc()
        self._m_kernel_usec.observe(result.kernel_time_usec)
        if self._chrome_on:
            from ..obs.chrome_trace import PID_KERNEL

            self.obs.chrome.duration(
                kernel.name or "kernel",
                "kernel",
                ts=t0,
                dur=self.clock.now - t0,
                pid=self.obs.pid(PID_KERNEL),
                tid=0,
                args={
                    "faults": result.total_faults,
                    "batches": result.num_batches,
                },
            )
        return result

    def _launch(self, kernel: KernelLaunch) -> LaunchResult:
        device = self.device
        device.reset_scheduling()
        self._waiters.clear()
        self._prefetch_queue.clear()

        occupancy = kernel.occupancy or self.config.gpu.max_warps_per_sm
        for sm in device.sms:
            sm.occupancy_limit = min(occupancy, self.config.gpu.max_warps_per_sm)
        for i, program in enumerate(kernel.programs):
            device.sms[i % len(device.sms)].enqueue(program)

        self._progress = LaunchProgress(
            name=kernel.name,
            num_warps=len(kernel.programs),
            start_time=self.clock.now,
            first_record=len(self.driver.log),
        )
        self._last_retire_at = self.clock.now
        if self._inject_on:
            # Baseline recovery point: an injected crash before the first
            # periodic checkpoint restores to the launch start.
            self._auto_checkpoint = EngineCheckpoint.capture(self)
        return self._run_loop()

    def resume(self) -> LaunchResult:
        """Continue an in-flight launch after a checkpoint restore.

        The restored :class:`LaunchProgress` carries everything the loop
        needs; the returned result covers the *whole* launch, exactly as if
        it had never been interrupted.
        """
        if self._progress is None or self._progress.done:
            raise SimulationError("no in-flight launch to resume")
        self.flight.record("resume", self._progress.name)
        try:
            with self.obs.span("engine.resume", "engine", kernel=self._progress.name):
                return self._run_loop()
        except UvmError as exc:
            self._capture_bundle(exc)
            raise

    def _run_loop(self) -> LaunchResult:
        device = self.device
        max_rounds = 1_000_000
        while True:
            # Re-read each iteration: a crash recovery inside _after_batch
            # replaces self._progress with the checkpointed instance.
            p = self._progress
            p.guard_rounds += 1
            if p.guard_rounds > max_rounds:  # pragma: no cover - safety net
                raise DeadlockError("engine exceeded round limit")
            progressed, compute = self._gpu_round(burst=p.driver_slept)
            p.compute_total += compute
            if len(device.fault_buffer) == 0:
                if device.idle:
                    break
                if not progressed:
                    # Warps may all be mid-compute: jump to the earliest
                    # phase completion (the driver sleeps meanwhile, §2.2).
                    next_ready = self._next_ready_time()
                    if next_ready is None or next_ready <= self.clock.now:
                        raise DeadlockError(
                            "no faults outstanding and no warp can progress"
                        )
                    self.clock.advance_to(next_ready)
                # Worker found no new faults and went to sleep (§2.2).
                p.driver_slept = True
                continue
            outcome = self.driver.service_next_batch(slept=p.driver_slept)
            p.driver_slept = False
            self._apply_outcome(outcome)
            self.sanitizer.on_round(self)
            self._after_batch(outcome.record.batch_id)

        # Wait out trailing compute of the last-retired warps.
        p = self._progress
        p.done = True
        self.clock.advance_to(self._last_retire_at)
        self.sanitizer.check_system(self)
        self._m_rounds.inc(p.guard_rounds)
        records = self.driver.log.records[p.first_record:]
        return LaunchResult(
            name=p.name,
            kernel_time_usec=self.clock.now - p.start_time,
            records=records,
            compute_time_usec=p.compute_total,
            num_warps=p.num_warps,
            total_faults=sum(r.num_faults_raw for r in records),
        )

    # ------------------------------------------------- checkpoint and crash

    def checkpoint(self) -> EngineCheckpoint:
        """Snapshot the full simulation state (see :mod:`.checkpoint`)."""
        return EngineCheckpoint.capture(self)

    def _capture_bundle(self, exc: BaseException) -> None:
        """Write a crash bundle for ``exc`` when ``obs.bundle_dir`` is set.

        Best-effort by contract: a bundle-write failure must never mask the
        original exception, so filesystem errors are swallowed (the bundle
        simply does not exist).  The written path lands in
        :attr:`last_bundle` for callers (CLI, campaign workers) to surface.
        """
        bundle_root = self.config.obs.bundle_dir
        if bundle_root is None:
            return
        from ..obs.bundle import unique_bundle_dir, write_bundle

        name = f"crash-{type(exc).__name__.lower()}"
        try:
            self.last_bundle = write_bundle(
                unique_bundle_dir(bundle_root, name), self, exc
            )
            self._m_bundles.inc()
        except OSError:
            self.last_bundle = None

    def _after_batch(self, batch_id: int) -> None:
        """Batch-boundary hooks: test callbacks, periodic auto-checkpoints,
        and the one-shot injected crash + recovery."""
        for hook in list(self._batch_hooks):
            hook(self, batch_id)
        if not self._inject_on:
            return
        every = self.config.inject.checkpoint_every
        if every > 0 and batch_id % every == 0:
            self._auto_checkpoint = EngineCheckpoint.capture(self)
            self.flight.record("checkpoint", batch_id)
        if self.injector.crash_due(batch_id):
            self.injector.record_crash()
            if self.config.inject.crash_recovery and self._auto_checkpoint is not None:
                # Rewind to the latest checkpoint and replay from there.
                # Recovery charges no simulated time: the simulated world
                # itself rolls back, and determinism of the replayed
                # timeline is the property under test.
                self.flight.record("crash.injected", batch_id)
                self._auto_checkpoint.restore_into(self)
                self.injector.record_recovery()
                self.flight.record("crash.recovered", batch_id)
            else:
                self.flight.record("crash.injected", batch_id)
                raise InjectedCrash(batch_id, self.clock.now)

    # ------------------------------------------------------------ GPU round

    def _gpu_round(self, burst: bool) -> Tuple[bool, float]:
        """One fault-generation window; returns (progressed, compute_usec)."""
        device = self.device
        cfg = self.config.gpu
        resident = device.page_table.resident
        progressed = False

        # Throttle windows: the per-SM quota is the fault *rate* times the
        # window length — the time since the previous window (≈ the last
        # batch's service time, or the wake latency after a sleep).  A
        # sleeping driver leaves a long window (burst up to the µTLB cap).
        window = max(0.0, self.clock.now - self._window_start)
        self._window_start = self.clock.now
        rate_quota = int(
            cfg.sm_fault_rate_limit * max(1.0, window / cfg.fault_window_unit_usec)
        )
        if burst:
            rate_quota = cfg.utlb_outstanding_limit
        quota = max(1, min(rate_quota, cfg.utlb_outstanding_limit))
        for sm in device.sms:
            sm.rate_limit = quota
            sm.new_window(burst, cfg.utlb_outstanding_limit)

        # Activate queued programs and advance newly-activated warps.
        # Successive blocks start with a small launch skew (per-SM wave):
        # blocks do not begin in perfect lockstep on real hardware.
        stagger = self.cost.launch_stagger_usec
        track_hits = self._hit_aware_eviction
        for sm in device.sms:
            activated = sm.activate_pending(self._next_uid)
            for i, warp in enumerate(activated):
                self._warps[warp.uid] = warp
                warp.track_hits = track_hits
                progressed = True
                skew = (i * len(device.sms) + sm.sm_id) * stagger
                warp.ready_at = self.clock.now + skew
                self._advance_warp(warp)

        # Prefetch-instruction faults: bypass scoreboard, µTLB cap, throttle.
        t = self.clock.now + self.cost.refault_latency_usec
        interval = self.cost.fault_arrival_interval_usec
        if self._prefetch_queue:
            for sm_id, page in self._prefetch_queue:
                if page in resident:
                    continue
                if device.gmmu.deliver_ok(
                    page, AccessType.PREFETCH, sm_id, warp_uid=0, timestamp=t
                ):
                    t += interval
                    progressed = True
            self._prefetch_queue.clear()

        # Throttled round-robin issuance across SMs (fair buffer order).
        # Warps still computing a completed phase (ready_at in the future)
        # issue nothing this window — the desynchronization that keeps
        # application batches below the synthetic ceiling (Table 2).
        now = self.clock.now
        inj = self.injector if self._inject_on else None
        issuers: List[Tuple] = []
        for sm in device.sms:
            utlb = device.utlbs[sm.utlb_id]
            warps = [w for w in sm.active if w.has_issuable and w.ready_at <= now]
            if warps and sm.budget > 0:
                if inj is not None and inj.fire("utlb.stall"):
                    # Injected µTLB issue-port stall: this SM issues no
                    # translation faults for one replay window.
                    continue
                issuers.append((sm, utlb, warps, [0]))
        buffer = device.fault_buffer
        if (
            self._soa
            and inj is None
            and sum(entry[0].budget for entry in issuers)
            <= buffer.capacity - len(buffer)
        ):
            # SoA bulk window: every delivery is guaranteed to land (total
            # budget bounds deliveries, so overflow is impossible), which
            # lets the per-µTLB issuance run decoupled from the buffer and
            # the accepted events append column-wise in one burst.  The
            # scalar loop below stays the arbiter whenever overflow or
            # injection could steer the interleaving.
            t, soa_progressed = self._issue_window_soa(issuers, t, interval)
            progressed = progressed or soa_progressed
            issuers = []
        while issuers:
            next_issuers = []
            for sm, utlb, warps, cursor in issuers:
                issued_here = False
                # One fault per SM per pass → round-robin interleaving.
                while cursor[0] < len(warps):
                    warp = warps[cursor[0]]
                    if not warp.has_issuable:
                        cursor[0] += 1
                        continue
                    if sm.budget <= 0:
                        break
                    merged_ahead = warp.peek_page() in utlb.pending_pages
                    if not merged_ahead and utlb.available <= 0:
                        break
                    occs = warp.take_issuable(1)
                    if not occs:
                        cursor[0] += 1
                        continue
                    page, access = occs[0]
                    if page in utlb.pending_pages:
                        # Same-page miss merges into the existing µTLB entry
                        # (occasionally a spurious duplicate is emitted).
                        if utlb.request(page):
                            sm.consume_budget(1)
                            fault = device.gmmu.deliver(
                                page, access, sm.sm_id, warp.uid, timestamp=t
                            )
                            if fault is not None:
                                t += interval
                        progressed = True
                        issued_here = True
                        break
                    utlb.request(page)
                    sm.consume_budget(1)
                    fault = device.gmmu.deliver(
                        page, access, sm.sm_id, warp.uid, timestamp=t
                    )
                    if fault is None:
                        # HW buffer full: roll back the µTLB entry so the
                        # re-demand does not merge against a phantom.  The
                        # requeue is progress — without it, an injected
                        # overflow storm dropping a round's only fault while
                        # the buffer is empty would trip the deadlock check
                        # (real hardware drops imply a non-empty buffer, so
                        # this path never decides liveness when injection is
                        # off).
                        utlb.cancel(page)
                        warp.requeue(page, access)
                        sm.budget = 0
                        progressed = True
                    else:
                        t += interval
                        progressed = True
                    issued_here = True
                    break
                if (
                    issued_here
                    and sm.budget > 0
                    and utlb.available > 0
                    and any(w.has_issuable for w in warps)
                ):
                    next_issuers.append((sm, utlb, warps, cursor))
            issuers = next_issuers

        # Injected early cancellation: drop one outstanding µTLB entry per
        # fired µTLB.  The buffered fault stays serviceable; a later miss on
        # the page re-requests a fresh entry instead of merging.
        if inj is not None and inj.active("utlb.early_cancel"):
            for utlb in device.utlbs:
                if utlb.pending_pages and inj.fire("utlb.early_cancel"):
                    utlb.early_cancel(min(utlb.pending_pages))

        # Compute accounting: warps run their phases concurrently; their
        # busy intervals are tracked per warp via ready_at, so the round's
        # wall time only needs the fault-arrival span here.  Only advance
        # when faults were actually delivered — otherwise the idle round
        # must not skip past warps' ready times.
        compute = 0.0
        for sm in device.sms:
            compute += sm.compute_backlog_usec
            sm.compute_backlog_usec = 0.0
        if len(device.fault_buffer) > 0:
            self.clock.advance_to(t)
        return progressed, compute

    def _issue_window_soa(
        self, issuers: List[Tuple], t0: float, interval: float
    ) -> Tuple[float, bool]:
        """Round-robin issuance with bulk column-wise buffer appends.

        Equivalence with the scalar interleaved loop: µTLB and warp state
        are local to one µTLB's SM group (adjacent SMs share the µTLB), so
        with overflow ruled out by the caller the only cross-group coupling
        is the buffer's arrival order.  Each group is therefore simulated
        alone, recording accepted events into per-pass buckets; replaying
        the buckets pass-by-pass (groups appear in ascending SM order within
        each bucket) reproduces the scalar loop's exact interleaving, and
        timestamps accumulate by the same repeated ``t += interval`` float
        additions during the single bulk append.
        """
        device = self.device
        #: Accepted events per round-robin pass, scalar arrival order within.
        #: Flat interleaved layout — (sm_id, utlb_id, page, access, warp_uid)
        #: five-tuples concatenated — so recording is one list.extend per
        #: event and the buffer de-interleaves with C-speed strided slices.
        buckets: List[List] = []
        progressed = False
        i = 0
        n = len(issuers)
        while i < n:
            utlb = issuers[i][1]
            group = [issuers[i]]
            i += 1
            while i < n and issuers[i][1] is utlb:
                group.append(issuers[i])
                i += 1
            pending = utlb.pending_pages
            pass_no = 0
            active = group
            while active:
                if pass_no == len(buckets):
                    buckets.append([])
                bucket = buckets[pass_no]
                next_active = []
                for entry in active:
                    sm, _utlb, warps, cursor = entry
                    issued_here = False
                    # One fault per SM per pass → round-robin interleaving.
                    while cursor[0] < len(warps):
                        warp = warps[cursor[0]]
                        if not warp.has_issuable:
                            cursor[0] += 1
                            continue
                        if sm.budget <= 0:
                            break
                        merged_ahead = warp.peek_page() in pending
                        if not merged_ahead and utlb.available <= 0:
                            break
                        occs = warp.take_issuable(1)
                        if not occs:
                            cursor[0] += 1
                            continue
                        page, access = occs[0]
                        if page in pending:
                            # Same-page miss merges into the existing µTLB
                            # entry (occasionally a spurious duplicate is
                            # emitted).
                            if utlb.request(page):
                                sm.consume_budget(1)
                                bucket.extend(
                                    (sm.sm_id, sm.utlb_id, page, access, warp.uid)
                                )
                            progressed = True
                            issued_here = True
                            break
                        utlb.request(page)
                        sm.consume_budget(1)
                        bucket.extend(
                            (sm.sm_id, sm.utlb_id, page, access, warp.uid)
                        )
                        progressed = True
                        issued_here = True
                        break
                    if (
                        issued_here
                        and sm.budget > 0
                        and utlb.available > 0
                        and any(w.has_issuable for w in warps)
                    ):
                        next_active.append(entry)
                active = next_active
                pass_no += 1
        if not buckets:
            return t0, progressed
        events = (
            buckets[0]
            if len(buckets) == 1
            else list(chain.from_iterable(buckets))
        )
        if events:
            device.gmmu.latch_interrupt(t0)
            t0 = device.fault_buffer.extend_bulk(events, t0, interval)
        return t0, progressed

    def _next_ready_time(self) -> Optional[float]:
        """Earliest future phase-completion among active warps."""
        best: Optional[float] = None
        now = self.clock.now
        for sm in self.device.sms:
            for warp in sm.active:
                if warp.ready_at > now and (best is None or warp.ready_at < best):
                    best = warp.ready_at
        return best

    def _advance_warp(self, warp: WarpState) -> None:
        """Advance a runnable warp; register waits and prefetch demands."""
        sm = self.device.sms[warp.sm_id]
        result = warp.advance(self.device.page_table.resident)
        sm.compute_backlog_usec += result.compute_usec
        if result.hit_pages:
            # Access-counter eviction policies observe in-memory hits.
            eviction = self.driver.eviction
            for block_id in sorted({vablock_of_page(p) for p in result.hit_pages}):
                eviction.on_access_hit(block_id)
        if result.compute_usec > 0.0:
            # The warp is busy computing the phases it just completed; its
            # next faults only issue once the compute retires.
            run_start = max(warp.ready_at, self.clock.now)
            warp.ready_at = run_start + result.compute_usec
            if self._chrome_on:
                self.obs.chrome.duration(
                    "run",
                    "sm",
                    ts=run_start,
                    dur=result.compute_usec,
                    pid=self._pid_sm,
                    tid=warp.sm_id,
                    args={"warp": warp.uid},
                )
        for page in result.prefetches:
            self._prefetch_queue.append((warp.sm_id, page))
        if result.finished:
            # Trailing compute of the final phases still occupies the GPU.
            self._last_retire_at = max(self._last_retire_at, warp.ready_at)
            sm.retire(warp)
            return
        for page in result.new_waits:
            self._waiters.setdefault(page, []).append(warp)

    # -------------------------------------------------------- batch results

    def _apply_outcome(self, outcome: ServiceOutcome) -> None:
        """Apply a batch's effects to blocked warps."""
        unblocked: List[WarpState] = []
        seen: Set[int] = set()
        waiters = self._waiters
        for page in outcome.serviced_pages:
            blocked = waiters.pop(page, None)
            if not blocked:
                continue
            for warp in blocked:
                if warp.finished:
                    continue
                if warp.on_pages_resident((page,)) and warp.uid not in seen:
                    seen.add(warp.uid)
                    unblocked.append(warp)
        for warp in unblocked:
            if not warp.blocked and not warp.finished:
                self._advance_warp(warp)
        # Flushed/unserviced faults: the µTLB replays still-needed misses.
        for fault in outcome.dropped_faults:
            self._requeue_fault(fault)
        for fault in outcome.unserviced_faults:
            self._requeue_fault(fault)

    def _requeue_fault(self, fault) -> None:
        warp = self._warps.get(fault.warp_uid)
        if warp is not None and not warp.finished:
            warp.requeue(fault.page, fault.access)
