"""Lightweight event trace for debugging and fine-grain figures.

The paper's per-fault instrumentation (as opposed to per-batch) records the
origin SM, address, access type, and arrival timestamp of every fault pulled
from the GPU fault buffer (used for Figs 3-5, 16c, 17c).  ``EventTrace`` is
the in-simulator equivalent: an append-only list of small tuples with
category filters, cheap enough to leave enabled for the microbenchmarks and
disabled (``enabled=False``) for the large sweeps.

Long-running captures can bound memory with ``max_events``: the trace then
behaves as a ring buffer keeping the *newest* events (``dropped`` counts the
overwritten ones).  Traces persist like :class:`~repro.core.instrumentation.BatchLog`
via :meth:`to_jsonl` / :meth:`from_jsonl`, and can tee every event into an
NDJSON sink (:class:`~repro.obs.sinks.NdjsonSink`) for live structured logs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
import json
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Tuple, Union


@dataclass(frozen=True)
class TraceEvent:
    """A single trace record.

    Attributes:
        time: simulated timestamp (µs).
        category: short event class, e.g. ``"fault"``, ``"batch"``,
            ``"evict"``, ``"replay"``, ``"prefetch"``.
        payload: category-specific tuple (kept as a tuple, not a dict, to
            stay allocation-light on the hot path).
    """

    time: float
    category: str
    payload: Tuple

    def to_dict(self) -> dict:
        return {"time": self.time, "category": self.category, "payload": list(self.payload)}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        return cls(
            time=float(data["time"]),
            category=data["category"],
            payload=tuple(data.get("payload", ())),
        )


class EventTrace:
    """Append-only trace with category filtering and an optional ring cap."""

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[set] = None,
        max_events: Optional[int] = None,
        sink=None,
    ) -> None:
        self.enabled = enabled
        #: When non-None, only these categories are recorded.
        self.categories = categories
        #: Ring-buffer capacity; None keeps every event (unbounded).
        self.max_events = max_events
        #: Events overwritten by the ring buffer since creation/clear.
        self.dropped = 0
        #: Optional NDJSON sink every recorded event is teed into.
        self.sink = sink
        if max_events is not None:
            if max_events <= 0:
                raise ValueError("max_events must be positive or None")
            self._events = deque(maxlen=max_events)
        else:
            self._events: List[TraceEvent] = []

    def emit(self, time: float, category: str, *payload) -> None:
        """Record one event (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        events = self._events
        if self.max_events is not None and len(events) == self.max_events:
            self.dropped += 1
        events.append(TraceEvent(time, category, payload))
        if self.sink is not None:
            self.sink.write_trace_event(time, category, payload)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, idx):
        if isinstance(self._events, deque) and isinstance(idx, slice):
            return list(self._events)[idx]
        return self._events[idx]

    def select(self, category: str, predicate: Optional[Callable[[TraceEvent], bool]] = None) -> List[TraceEvent]:
        """All events of ``category`` (optionally filtered by ``predicate``)."""
        out = [e for e in self._events if e.category == category]
        if predicate is not None:
            out = [e for e in out if predicate(e)]
        return out

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    # --------------------------------------------------------- serialization

    def to_jsonl(self, path: Union[str, Path]) -> Path:
        """Write one JSON object per event to ``path`` (like ``BatchLog``)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for event in self._events:
                fh.write(json.dumps(event.to_dict()) + "\n")
        return path

    @classmethod
    def from_jsonl(
        cls,
        path: Union[str, Path],
        max_events: Optional[int] = None,
    ) -> "EventTrace":
        """Reload a persisted trace (payloads round-trip as tuples)."""
        trace = cls(enabled=True, max_events=max_events)
        with Path(path).open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    event = TraceEvent.from_dict(json.loads(line))
                    trace.emit(event.time, event.category, *event.payload)
        return trace
