"""Lightweight event trace for debugging and fine-grain figures.

The paper's per-fault instrumentation (as opposed to per-batch) records the
origin SM, address, access type, and arrival timestamp of every fault pulled
from the GPU fault buffer (used for Figs 3-5, 16c, 17c).  ``EventTrace`` is
the in-simulator equivalent: an append-only list of small tuples with
category filters, cheap enough to leave enabled for the microbenchmarks and
disabled (``enabled=False``) for the large sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """A single trace record.

    Attributes:
        time: simulated timestamp (µs).
        category: short event class, e.g. ``"fault"``, ``"batch"``,
            ``"evict"``, ``"replay"``, ``"prefetch"``.
        payload: category-specific tuple (kept as a tuple, not a dict, to
            stay allocation-light on the hot path).
    """

    time: float
    category: str
    payload: Tuple


class EventTrace:
    """Append-only trace with category filtering."""

    def __init__(self, enabled: bool = True, categories: Optional[set] = None) -> None:
        self.enabled = enabled
        #: When non-None, only these categories are recorded.
        self.categories = categories
        self._events: List[TraceEvent] = []

    def emit(self, time: float, category: str, *payload) -> None:
        """Record one event (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self._events.append(TraceEvent(time, category, payload))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, idx):
        return self._events[idx]

    def select(self, category: str, predicate: Optional[Callable[[TraceEvent], bool]] = None) -> List[TraceEvent]:
        """All events of ``category`` (optionally filtered by ``predicate``)."""
        out = [e for e in self._events if e.category == category]
        if predicate is not None:
            out = [e for e in out if predicate(e)]
        return out

    def clear(self) -> None:
        self._events.clear()
