"""Deterministic random-number utilities.

Every stochastic component (random-access workloads, cost jitter, host
first-touch interleaving) draws from a generator derived from the single
``SystemConfig.seed`` through named streams, so adding a new consumer never
perturbs the draws of existing ones.
"""

from __future__ import annotations

import zlib

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    """Root generator for ``seed``."""
    return np.random.default_rng(seed)


def spawn_rng(seed: int, stream: str) -> np.random.Generator:
    """Independent generator for the named ``stream`` under ``seed``.

    The stream name is hashed (stable across processes and Python versions,
    unlike ``hash()``) and combined with the seed via ``SeedSequence``.

    >>> a = spawn_rng(0, "workload")
    >>> b = spawn_rng(0, "jitter")
    >>> bool((a.random(8) == b.random(8)).all())
    False
    """
    tag = zlib.crc32(stream.encode("utf-8"))
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(tag,)))
