"""Simulated wall clock.

All timing in the reproduction is *simulated*: costs come from
:class:`repro.hostos.cost_model.CostModel` and advance this clock
deterministically, which makes every figure and table exactly reproducible —
the paper's results are all relative (fractions of batch time, speedup
factors, orderings), so determinism loses nothing while removing host noise.

Time is kept in microseconds as a float; the paper's instrumented driver uses
nanosecond-resolution timers, and float64 microseconds retain sub-nanosecond
precision over any realistic run length.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated clock with a section-timing helper.

    >>> clock = SimClock()
    >>> _ = clock.advance(3.5)
    >>> clock.now
    3.5
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:  # dim: start=us
        self._now = float(start)  # dim: us

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def advance(self, usec: float) -> float:  # dim: usec=us -> us
        """Advance by ``usec`` (must be non-negative); returns the new time."""
        if usec < 0:
            raise ValueError(f"cannot advance clock by negative time {usec}")
        self._now += usec
        return self._now

    def advance_to(self, deadline: float) -> float:  # dim: deadline=us -> us
        """Advance to ``deadline`` if it is in the future; never rewinds."""
        if deadline > self._now:
            self._now = deadline
        return self._now

    def restore(self, now: float) -> None:  # dim: now=us
        """Set the clock to an absolute time — checkpoint restore only.

        The only sanctioned rewind: :class:`repro.sim.checkpoint` rolls the
        whole engine (and the sanitizer's monotonicity watermark) back
        together, so causality within the restored timeline is preserved.
        """
        self._now = float(now)

    def section(self) -> "ClockSection":
        """Start a timed section; ``section.elapsed`` after more advances."""
        return ClockSection(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.3f}us)"


class ClockSection:
    """Measures simulated time elapsed since construction.

    Mirrors the paper's targeted high-precision timers around driver
    routines: wrap the routine, then read :attr:`elapsed`.
    """

    __slots__ = ("_clock", "_start")

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now

    @property
    def start(self) -> float:
        return self._start

    @property
    def elapsed(self) -> float:
        return self._clock.now - self._start
