"""Engine checkpoint/restore for crash-recovery chaos testing.

:class:`EngineCheckpoint` snapshots the *pure simulation state* of one
:class:`~repro.sim.engine.Engine` — clock, RNG streams, fault buffer, µTLBs,
SM/warp scheduling state, page table, chunk allocator, copy-engine counters,
host VM/DMA state, the driver's VABlock manager and batch log, and the
in-flight launch progress — into a single pickle blob.  The pickle memo
plays the role deepcopy's memo used to: shared references (the same
:class:`WarpState` appearing in ``sm.active`` and the engine's waiter lists)
survive the round trip with identity intact, while costing one serialize
pass instead of a recursive Python-level copy.  The blob doubles as the
on-disk format, so :meth:`to_bytes` is free.

Attachments are deliberately excluded: observability handles, the sanitizer,
the injector object, and config/cost-model references stay with the live
engine, so a restore rewinds the *simulated* world without disturbing the
instrumentation around it (engine-side resilience counters included — like
metrics, they never rewind).  The injector contributes its own
:meth:`~repro.inject.FaultInjector.snapshot` (RNG stream states + counters),
and the sanitizer is :meth:`~repro.check.sanitizer.Sanitizer.resync`'d after
restore so the monotonicity watermarks accept the rewound clock.

Restores are repeatable: every :meth:`restore_into` unpickles a fresh object
graph from the stored blob, so one checkpoint can seed many resumed
timelines (the checkpoint/restore determinism property tests rely on this).
"""

from __future__ import annotations

import pickle
from typing import Dict, List

#: Attribute names that are wiring, not simulation state, on any component.
#: ``_flight`` is the flight recorder: instrumentation like metrics, it
#: never rewinds on restore (the pre-crash events are the forensic value).
_SKIP_COMMON = frozenset(
    {"_san", "_inj", "_obs", "_clock", "_pid", "config", "cost_model", "sink", "_flight"}
)
#: Per-kind extra exclusions (references into other captured components).
_SKIP_EXTRA: Dict[str, frozenset] = {
    "gmmu": frozenset({"buffer"}),
}


def _attr_names(obj, extra_skip: frozenset = frozenset()) -> List[str]:
    """Capturable attribute names of ``obj``: slots (MRO order) + instance
    dict, minus wiring attributes and cached metric handles (``_m_*``)."""
    names: List[str] = []
    seen = set()
    for klass in type(obj).__mro__:
        for name in getattr(klass, "__slots__", ()):
            if name not in seen:
                seen.add(name)
                names.append(name)
    for name in getattr(obj, "__dict__", {}):
        if name not in seen:
            seen.add(name)
            names.append(name)
    return [
        name
        for name in names
        if name not in _SKIP_COMMON
        and name not in extra_skip
        and not name.startswith("_m_")
        and hasattr(obj, name)
    ]


def _capture_obj(obj, extra_skip: frozenset = frozenset()) -> Dict[str, object]:
    return {name: getattr(obj, name) for name in _attr_names(obj, extra_skip)}


def _restore_obj(obj, state: Dict[str, object]) -> None:
    for name in state:
        setattr(obj, name, state[name])


#: Driver attributes that are simulation state (the rest is wiring).
_DRIVER_ATTRS = (
    "_batch_id",
    "_current_batch_size",
    "async_unmap_backlog_usec",
    "_active_ce_id",
    "_block_cursor",
    "_block_elapsed",
    "_phase_marks",
)

#: Engine attributes captured verbatim.
_ENGINE_ATTRS = (
    "_waiters",
    "_warps",
    "_prefetch_queue",
    "_uid",
    "_last_retire_at",
    "_window_start",
    "_progress",
)


def _build_state(engine) -> dict:
    """The engine's simulation state as a dict of *live references* —
    callers must serialize it before the simulation moves again."""
    driver = engine.driver
    device = engine.device
    return {
        "clock_now": engine.clock.now,
        "engine_rng": engine.rng.bit_generator.state,
        "driver_rng": (
            driver.rng.bit_generator.state if driver.rng is not None else None
        ),
        "engine": {name: getattr(engine, name) for name in _ENGINE_ATTRS},
        "fault_buffer": _capture_obj(device.fault_buffer),
        "gmmu": _capture_obj(device.gmmu, _SKIP_EXTRA["gmmu"]),
        "utlbs": [_capture_obj(u) for u in device.utlbs],
        "sms": [_capture_obj(sm) for sm in device.sms],
        "page_table": _capture_obj(device.page_table),
        "chunks": _capture_obj(device.chunks),
        "copy_engines": [_capture_obj(ce) for ce in device.copy_engines],
        "host_vm": _capture_obj(engine.host_vm),
        "dma": _capture_obj(engine.dma),
        "trace": _capture_obj(engine.trace),
        "vablocks": driver.vablocks,
        "log_records": list(driver.log.records),
        "driver": {name: getattr(driver, name) for name in _DRIVER_ATTRS},
        "eviction": _capture_obj(driver.eviction),
        "prefetcher": _capture_obj(driver.prefetcher),
        "injector": engine.injector.snapshot(),
    }


class EngineCheckpoint:
    """One restorable snapshot of an engine's simulation state."""

    def __init__(self, blob: bytes, clock_now: float, num_records: int) -> None:
        self._blob = blob
        self._clock_now = clock_now
        self._num_records = num_records

    # ------------------------------------------------------------- capture

    @classmethod
    def capture(cls, engine) -> "EngineCheckpoint":
        """Snapshot ``engine`` without perturbing it (no RNG draws, no
        clock advances) — safe to call at any batch boundary."""
        state = _build_state(engine)
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        return cls(blob, state["clock_now"], len(state["log_records"]))

    # ------------------------------------------------------------- restore

    def restore_into(self, engine) -> None:
        """Rewind ``engine`` to this snapshot (repeatable: every restore
        unpickles pristine copies from the stored blob)."""
        state = pickle.loads(self._blob)
        driver = engine.driver
        device = engine.device
        engine.clock.restore(state["clock_now"])
        engine.rng.bit_generator.state = state["engine_rng"]
        if driver.rng is not None and state["driver_rng"] is not None:
            driver.rng.bit_generator.state = state["driver_rng"]
        for name in _ENGINE_ATTRS:
            setattr(engine, name, state["engine"][name])
        _restore_obj(device.fault_buffer, state["fault_buffer"])
        _restore_obj(device.gmmu, state["gmmu"])
        for utlb, u_state in zip(device.utlbs, state["utlbs"]):
            _restore_obj(utlb, u_state)
        for sm, sm_state in zip(device.sms, state["sms"]):
            _restore_obj(sm, sm_state)
        _restore_obj(device.page_table, state["page_table"])
        _restore_obj(device.chunks, state["chunks"])
        for ce, ce_state in zip(device.copy_engines, state["copy_engines"]):
            _restore_obj(ce, ce_state)
        _restore_obj(engine.host_vm, state["host_vm"])
        _restore_obj(engine.dma, state["dma"])
        _restore_obj(engine.trace, state["trace"])
        driver.vablocks = state["vablocks"]
        driver.log.records[:] = state["log_records"]
        for name in _DRIVER_ATTRS:
            setattr(driver, name, state["driver"][name])
        _restore_obj(driver.eviction, state["eviction"])
        _restore_obj(driver.prefetcher, state["prefetcher"])
        if state["injector"] is not None:
            engine.injector.restore_state(state["injector"])
        engine.sanitizer.resync(engine)

    # -------------------------------------------------------- serialization

    def to_bytes(self) -> bytes:
        """The snapshot's pickle blob (pure data: plain containers, numpy
        arrays, warp/fault/record dataclasses) — already serialized."""
        return self._blob

    @classmethod
    def from_bytes(cls, blob: bytes) -> "EngineCheckpoint":
        state = pickle.loads(blob)
        return cls(blob, state["clock_now"], len(state["log_records"]))

    def summary(self) -> dict:
        """Identifying facts about the snapshot (same dict idiom as the
        injector's and sanitizer's ``summary()``)."""
        return {
            "clock_usec": self._clock_now,
            "batches": self._num_records,
        }
