"""Baselines: programmer-managed (explicit) memory movement.

Figure 1 of the paper compares UVM's abstracted unified space against
"explicit direct management" — the classic ``cudaMemcpy`` workflow whose
costs are pure bulk transfers.  :mod:`repro.baselines.explicit` models it.
"""

from .explicit import ExplicitTransferModel, explicit_run_time

__all__ = ["ExplicitTransferModel", "explicit_run_time"]
