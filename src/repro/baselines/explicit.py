"""Explicit (programmer-managed) memory movement baseline.

Models the traditional CUDA workflow: allocate device memory, one bulk
``cudaMemcpyHostToDevice`` per input array, launch the kernel on device-
resident data, one bulk copy back per output.  Per-access cost is then the
amortized bulk-transfer time plus device-memory access time — the baseline
that UVM's faulted accesses exceed by one or more orders of magnitude
(Fig 1): a 4 KiB page serviced through the fault path costs a full batch's
share of driver work, versus ~0.3 µs of amortized wire time.

The model shares the interconnect constants of the simulated copy engine so
the comparison isolates the *management* overhead, exactly as the paper's
framing intends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..hostos.cost_model import CostModel


@dataclass
class ExplicitTransferModel:
    """Bulk-copy cost model for explicitly managed applications."""

    cost_model: CostModel
    #: Device-memory (HBM2) access latency per 4 KiB line, µs — effectively
    #: free next to any transfer cost; included for completeness.
    device_access_usec: float = 0.001

    def h2d_time(self, nbytes: int) -> float:
        """One bulk host→device copy (µs)."""
        if nbytes <= 0:
            return 0.0
        return (
            self.cost_model.transfer_latency_usec
            + nbytes / self.cost_model.link_bandwidth_bytes_per_usec
        )

    def d2h_time(self, nbytes: int) -> float:
        """One bulk device→host copy (µs)."""
        return self.h2d_time(nbytes)

    def run_time(
        self,
        bytes_in: int,
        bytes_out: int,
        compute_usec: float = 0.0,
        chunk_bytes: int = 64 << 20,
    ) -> float:
        """End-to-end time: staged copies in, compute, copies out.

        Large arrays are staged in ``chunk_bytes`` copies (as real codes do
        to overlap pinning), each paying the per-transfer latency.
        """
        total = compute_usec
        for nbytes in (bytes_in, bytes_out):
            remaining = nbytes
            is_input = nbytes is bytes_in
            while remaining > 0:
                chunk = min(remaining, chunk_bytes)
                total += self.h2d_time(chunk) if is_input else self.d2h_time(chunk)
                remaining -= chunk
        return total

    def per_access_latency(
        self,
        bytes_in: int,
        bytes_out: int,
        num_page_accesses: int,
        compute_usec: float = 0.0,
    ) -> float:
        """Average per-4KiB-access latency (µs) under explicit management."""
        if num_page_accesses <= 0:
            raise ValueError("num_page_accesses must be positive")
        total = self.run_time(bytes_in, bytes_out, compute_usec)
        return total / num_page_accesses + self.device_access_usec


def explicit_run_time(bytes_in: int, bytes_out: int, compute_usec: float = 0.0) -> float:
    """Convenience wrapper using the default cost model."""
    return ExplicitTransferModel(CostModel()).run_time(bytes_in, bytes_out, compute_usec)
