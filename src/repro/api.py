"""Public API: managed allocations and the simulated UVM system.

Typical use::

    from repro import UvmSystem, default_config

    system = UvmSystem(default_config(prefetch_enabled=True))
    a = system.managed_alloc(8 << 20, name="a")
    system.host_touch(a)                     # CPU first-touch init
    result = system.launch(my_kernel)        # run a KernelLaunch
    print(result.batch_time_usec, len(result.records))

``UvmSystem`` wires the full stack together: the GPU device model, the host
OS model, and the UVM driver, all driven by the deterministic engine.
Managed allocations are VABlock-aligned ranges of one flat virtual address
space, exactly as ``cudaMallocManaged`` hands out 2 MiB-aligned ranges that
the driver splits into VABlocks (paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from .config import SystemConfig, default_config
from .core.batch_record import BatchRecord
from .core.instrumentation import BatchLog
from .errors import AllocationError
from .gpu.warp import KernelLaunch
from .hostos.cpu import static_first_touch
from .sim.engine import Engine, LaunchResult
from .sim.trace import EventTrace
from .units import PAGE_SIZE, VABLOCK_SIZE, align_up


@dataclass(frozen=True)
class ManagedAllocation:
    """A VABlock-aligned managed memory range."""

    name: str
    start_page: int
    num_pages: int

    @property
    def nbytes(self) -> int:
        return self.num_pages * PAGE_SIZE

    @property
    def end_page(self) -> int:
        return self.start_page + self.num_pages

    def page(self, offset: int) -> int:
        """Global page id for page ``offset`` of this allocation."""
        if not 0 <= offset < self.num_pages:
            raise IndexError(
                f"page offset {offset} out of range for {self.name!r} "
                f"({self.num_pages} pages)"
            )
        return self.start_page + offset

    def pages(self, start: int = 0, stop: Optional[int] = None) -> range:
        """Global page ids for offsets ``[start, stop)``."""
        if stop is None:
            stop = self.num_pages
        if not (0 <= start <= stop <= self.num_pages):
            raise IndexError(f"page range [{start}, {stop}) invalid for {self.name!r}")
        return range(self.start_page + start, self.start_page + stop)

    def page_of_byte(self, byte_offset: int) -> int:
        """Global page id containing byte ``byte_offset`` of the allocation."""
        return self.page(byte_offset // PAGE_SIZE)


@dataclass
class RunResult:
    """Aggregate outcome of a workload run (possibly several kernels)."""

    workload: str
    launches: List[LaunchResult] = field(default_factory=list)
    total_time_usec: float = 0.0

    @property
    def records(self) -> List[BatchRecord]:
        out: List[BatchRecord] = []
        for launch in self.launches:
            out.extend(launch.records)
        return out

    @property
    def kernel_time_usec(self) -> float:
        """Aggregate kernel wall time (Table 4's "Kernel" column)."""
        return sum(l.kernel_time_usec for l in self.launches)

    @property
    def batch_time_usec(self) -> float:
        """Aggregate batch servicing time (Table 4's "Batch" column)."""
        return sum(l.batch_time_usec for l in self.launches)

    @property
    def num_batches(self) -> int:
        return sum(l.num_batches for l in self.launches)

    @property
    def total_faults(self) -> int:
        return sum(l.total_faults for l in self.launches)

    def batch_log(self) -> BatchLog:
        return BatchLog.from_records(self.records)


class UvmSystem:
    """Facade over the simulated CPU+GPU system with UVM."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        trace: bool = False,
        trace_categories: Optional[set] = None,
    ) -> None:
        self.config = config if config is not None else default_config()
        self.config.validate()
        event_trace = EventTrace(
            enabled=trace,
            categories=trace_categories,
            max_events=self.config.obs.trace_max_events,
        )
        self.engine = Engine(self.config, trace=event_trace)
        self._next_page = 0
        self._allocations: List[ManagedAllocation] = []

    # ------------------------------------------------------------ accessors

    @property
    def clock(self):
        return self.engine.clock

    @property
    def driver(self):
        return self.engine.driver

    @property
    def trace(self) -> EventTrace:
        return self.engine.trace

    @property
    def obs(self):
        """The engine's :class:`~repro.obs.Observability` facade."""
        return self.engine.obs

    @property
    def metrics(self):
        """The run's :class:`~repro.obs.metrics.MetricsRegistry`."""
        return self.engine.obs.metrics

    @property
    def spans(self):
        """The run's :class:`~repro.obs.spans.SpanProfiler`."""
        return self.engine.obs.spans

    @property
    def sanitizer(self):
        """The run's UVMSan checker (a null object unless
        ``config.check.enabled`` — see :mod:`repro.check.sanitizer`)."""
        return self.engine.sanitizer

    @property
    def injector(self):
        """The run's fault injector (a null object unless
        ``config.inject.enabled`` — see :mod:`repro.inject`)."""
        return self.engine.injector

    def checkpoint(self):
        """Snapshot the engine's full simulation state for a later restore
        (see :mod:`repro.sim.checkpoint`)."""
        return self.engine.checkpoint()

    def metrics_snapshot(self) -> dict:
        """Current metric values as a plain nested dict."""
        return self.engine.obs.metrics.snapshot()

    def prometheus_metrics(self) -> str:
        """Current metric values in Prometheus text exposition format."""
        return self.engine.obs.metrics.to_prometheus()

    def export_chrome_trace(self, path):
        """Write the accumulated Chrome trace JSON to ``path``.

        Requires ``config.obs.chrome_trace = True`` before any work runs;
        load the file in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``.
        """
        return self.engine.obs.chrome.write(path)

    @property
    def records(self) -> List[BatchRecord]:
        """Every batch record logged so far."""
        return self.engine.driver.log.records

    @property
    def allocations(self) -> List[ManagedAllocation]:
        return list(self._allocations)

    # ----------------------------------------------------------- allocation

    def managed_alloc(self, nbytes: int, name: str = "") -> ManagedAllocation:
        """Allocate a managed range (``cudaMallocManaged`` equivalent).

        Ranges are 2 MiB-aligned so one VABlock never spans allocations.
        """
        if nbytes <= 0:
            raise AllocationError("allocation size must be positive")
        num_pages = align_up(nbytes, PAGE_SIZE) // PAGE_SIZE
        start_page = self._next_page
        alloc = ManagedAllocation(
            name=name or f"alloc{len(self._allocations)}",
            start_page=start_page,
            num_pages=num_pages,
        )
        span_pages = align_up(num_pages * PAGE_SIZE, VABLOCK_SIZE) // PAGE_SIZE
        self._next_page += span_pages
        self._allocations.append(alloc)
        self.engine.driver.register_allocation(start_page, num_pages)
        return alloc

    # ---------------------------------------------------------- host phases

    def host_touch(
        self,
        alloc: ManagedAllocation,
        start: int = 0,
        stop: Optional[int] = None,
        num_threads: Optional[int] = None,
        interleaved: bool = False,
    ) -> None:
        """CPU touches pages ``[start, stop)`` of ``alloc`` (e.g. OpenMP init).

        ``num_threads`` defaults to the host config; the thread→page layout
        follows OpenMP static scheduling (or round-robin when
        ``interleaved``), which determines later unmap shootdown cost
        (Fig 11).
        """
        if stop is None:
            stop = alloc.num_pages
        pages = list(alloc.pages(start, stop))
        threads = num_threads if num_threads is not None else self.config.host.num_threads
        if interleaved:
            from .hostos.cpu import interleaved_first_touch

            offset_fn = interleaved_first_touch(threads)
        else:
            offset_fn = static_first_touch(stop - start, threads)
        base = alloc.start_page + start
        self.engine.host_touch(pages, thread_of=lambda page: offset_fn(page - base))

    def host_touch_pages(
        self,
        pages: Iterable[int],
        thread_of: Optional[Callable[[int], int]] = None,
    ) -> None:
        """Low-level host touch of arbitrary global page ids."""
        self.engine.host_touch(pages, thread_of=thread_of)

    # ---------------------------------------------------------------- hints

    def mem_prefetch(
        self,
        alloc: ManagedAllocation,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> BatchRecord:
        """``cudaMemPrefetchAsync`` to the device: bulk-migrate pages
        ``[start, stop)`` of ``alloc`` through the driver's VABlock path,
        with no faults, no per-fault servicing, and no reactive prefetcher.
        Returns the hinted migration's batch record."""
        if stop is None:
            stop = alloc.num_pages
        return self.engine.driver.bulk_migrate(alloc.pages(start, stop))

    def mem_advise_read_mostly(
        self,
        alloc: ManagedAllocation,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> None:
        """``cudaMemAdviseSetReadMostly``: GPU migrations of the covered
        VABlocks *duplicate* the data — host mappings and copies stay valid —
        until a GPU write collapses the duplication."""
        if stop is None:
            stop = alloc.num_pages
        self.engine.driver.advise_read_mostly(alloc.pages(start, stop))

    def mem_advise_accessed_by(
        self,
        alloc: ManagedAllocation,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> BatchRecord:
        """``cudaMemAdviseSetAccessedBy`` (the device): establish direct
        mappings so GPU accesses go over the interconnect without faulting
        or migrating (zero-copy).  Pays the DMA-mapping setup once."""
        if stop is None:
            stop = alloc.num_pages
        return self.engine.driver.advise_accessed_by(alloc.pages(start, stop))

    # -------------------------------------------------------------- kernels

    def launch(self, kernel: KernelLaunch) -> LaunchResult:
        """Run one kernel to completion."""
        return self.engine.launch(kernel)

    def run(self, steps: Sequence, name: str = "run") -> RunResult:
        """Run a sequence of steps: ``KernelLaunch`` objects are launched,
        callables are invoked with this system (host phases)."""
        result = RunResult(workload=name)
        t0 = self.clock.now
        for step in steps:
            if isinstance(step, KernelLaunch):
                result.launches.append(self.launch(step))
            elif callable(step):
                step(self)
            else:
                raise TypeError(f"unsupported step {step!r}")
        result.total_time_usec = self.clock.now - t0
        return result

    # --------------------------------------------------------------- sizing

    def oversubscription_bytes(self, ratio: float) -> int:
        """Problem bytes equal to ``ratio`` × device memory (Fig 12-17 use
        ratios like 1.16 and 1.25)."""
        return int(self.config.gpu.memory_bytes * ratio)
