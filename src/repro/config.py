"""Configuration dataclasses for the simulated UVM stack.

The defaults model the paper's testbed (§3.1): a Titan V (80 SMs, 12 GB HBM2)
attached over PCIe 3.0 x16 to an AMD Epyc 7551P host running Fedora 33 —
except that device memory defaults to 64 MiB so the full experiment suite runs
in seconds on a laptop.  Experiments express problem sizes as *ratios* of
device memory, so the scaled-down memory preserves the paper's
oversubscription behaviour.

Every hardware limit the paper reverse-engineers is an explicit field here:

* ``utlb_outstanding_limit = 56`` — the per-µTLB outstanding fault cap
  measured in §3.2 / Fig 3.
* ``sm_fault_rate_limit`` — the per-SM fault-rate throttle ("far fault"
  mechanism) inferred in §3.2; with a 256-fault batch over 80 SMs this
  yields the ~3.2 faults/SM/batch ceiling of Table 2.
* ``batch_size = 256`` — the driver's default maximum batch (§2.2); Fig 9
  sweeps this up to 6144.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Optional

from .errors import ConfigError
from .units import MB, PAGE_SIZE, VABLOCK_SIZE


@dataclass
class GpuConfig:
    """Device-side hardware parameters."""

    #: Number of streaming multiprocessors (Titan V: 80).
    num_sms: int = 80
    #: Adjacent SMs share a µTLB (§4.2: "adjacent SMs share a µTLB").
    sms_per_utlb: int = 2
    #: Maximum outstanding translation faults per µTLB (§3.2, Fig 3).
    utlb_outstanding_limit: int = 56
    #: Fault-rate throttle (§3.2, the "far fault" mechanism): an SM may
    #: issue up to ``sm_fault_rate_limit`` faults per
    #: ``fault_window_unit_usec`` of replay-window time.  The engine scales
    #: each round's quota by the actual window length (≈ the previous
    #: batch's service time), so short windows (a fast driver) yield the
    #: small batches of Fig 3 while long windows let the buffer accumulate —
    #: the mechanism behind Fig 9's unique-fault ceiling of ~500/batch.
    sm_fault_rate_limit: int = 8
    #: Reference window (µs) for the rate limit above (rate = limit/unit).
    fault_window_unit_usec: float = 20.0
    #: Hardware fault buffer entries; overflowing faults are dropped and
    #: reissued after replay (footnote 1 of the paper).
    fault_buffer_entries: int = 8192
    #: Device memory size.  Scaled down from 12 GiB by default; see module doc.
    memory_bytes: int = 64 * MB
    #: Maximum warps resident per SM (Volta: 64).
    max_warps_per_sm: int = 64
    #: Threads per warp.
    warp_size: int = 32

    @property
    def num_utlbs(self) -> int:
        return (self.num_sms + self.sms_per_utlb - 1) // self.sms_per_utlb

    @property
    def num_vablocks(self) -> int:
        return self.memory_bytes // VABLOCK_SIZE

    def utlb_of_sm(self, sm_id: int) -> int:
        """µTLB id servicing ``sm_id`` (adjacent SMs share)."""
        return sm_id // self.sms_per_utlb

    def validate(self) -> None:
        if self.num_sms <= 0:
            raise ConfigError("num_sms must be positive")
        if self.sms_per_utlb <= 0:
            raise ConfigError("sms_per_utlb must be positive")
        if self.utlb_outstanding_limit <= 0:
            raise ConfigError("utlb_outstanding_limit must be positive")
        if self.sm_fault_rate_limit <= 0:
            raise ConfigError("sm_fault_rate_limit must be positive")
        if self.memory_bytes < VABLOCK_SIZE:
            raise ConfigError("device memory must hold at least one VABlock")
        if self.memory_bytes % VABLOCK_SIZE:
            raise ConfigError("device memory must be a multiple of 2MB")
        if self.fault_buffer_entries <= 0:
            raise ConfigError("fault_buffer_entries must be positive")


@dataclass
class DriverConfig:
    """nvidia-uvm driver policy parameters."""

    #: Maximum faults fetched into one batch (§2.2; swept by Fig 9).
    batch_size: int = 256
    #: Enable the reactive tree/density prefetcher (§5.2).
    prefetch_enabled: bool = True
    #: Density threshold: a subtree is promoted when the fraction of its
    #: pages with migration *evidence* (resident, faulted, or 64 KiB
    #: upgrades — not the tree's own promotions) strictly exceeds this.
    #: 0.3 calibrates to the real driver's behaviour (51 % counted over a
    #: bitmap that includes same-pass promotions): dense sweeps escalate to
    #: the full block within ~2 batches, while a single fault in an empty
    #: block pulls only a region pair.
    prefetch_threshold: float = 0.3
    #: Prefetch policy: "density-tree" (the driver's, §5.2), "region-only"
    #: (just the 64 KiB upgrade), "sequential" (next-N), or "full-block".
    prefetch_policy: str = "density-tree"
    #: Enable VABlock-granularity LRU eviction (§5.1).  When disabled, an
    #: out-of-memory condition raises :class:`repro.errors.OutOfDeviceMemory`.
    eviction_enabled: bool = True
    #: Eviction policy: "lru" (the driver's fault-visible LRU, §5.1),
    #: "fifo" (strict allocation order), "random", or "access-counter"
    #: (hit-aware via modelled GPU access counters, Ganguly et al. [15]).
    eviction_policy: str = "lru"
    #: Ablation (§6): number of simulated driver service threads splitting the
    #: per-VABlock work of a batch.  1 reproduces the paper's serial driver.
    service_threads: int = 1
    #: Ablation (§6): perform CPU page unmapping asynchronously (off the fault
    #: path); its cost then overlaps the GPU instead of serializing it.
    async_unmap: bool = False
    #: Ablation (§6): adapt batch size based on observed duplicate rate.
    adaptive_batch: bool = False
    #: Lower bound for the adaptive batch policy.
    adaptive_batch_min: int = 64
    #: Ablation (§6): prefetch scope in VABlocks (paper: fixed at 1).
    prefetch_scope_blocks: int = 1
    #: Maximum service attempts per transient failure (DMA map, copy-engine
    #: burst, host population) before the driver gives up on the operation.
    retry_max_attempts: int = 4
    #: First retry backoff in simulated µs; doubles (``retry_backoff_factor``)
    #: per attempt up to ``retry_backoff_max_usec``.
    retry_backoff_base_usec: float = 2.0
    retry_backoff_factor: float = 2.0
    retry_backoff_max_usec: float = 64.0
    #: Per-phase deadline: a copy-engine burst that exceeds it is declared
    #: stuck, charged, and failed over to the sibling engine.
    phase_deadline_usec: float = 200.0
    #: What exhausting the retry budget does: "degrade" falls back (defer the
    #: VABlock, drop the prefetch and demand-page) while "fail-fast" raises
    #: :class:`repro.errors.RetryExhausted`.
    failure_mode: str = "degrade"

    def validate(self) -> None:
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if not 0.0 < self.prefetch_threshold <= 1.0:
            raise ConfigError("prefetch_threshold must be in (0, 1]")
        if self.prefetch_policy not in (
            "density-tree",
            "region-only",
            "sequential",
            "full-block",
        ):
            raise ConfigError(f"unknown prefetch_policy {self.prefetch_policy!r}")
        if self.eviction_policy not in ("lru", "fifo", "random", "access-counter"):
            raise ConfigError(f"unknown eviction_policy {self.eviction_policy!r}")
        if self.service_threads <= 0:
            raise ConfigError("service_threads must be positive")
        if self.adaptive_batch_min <= 0:
            raise ConfigError("adaptive_batch_min must be positive")
        if self.prefetch_scope_blocks <= 0:
            raise ConfigError("prefetch_scope_blocks must be positive")
        if self.retry_max_attempts <= 0:
            raise ConfigError("retry_max_attempts must be positive")
        if self.retry_backoff_base_usec < 0:
            raise ConfigError("retry_backoff_base_usec must be non-negative")
        if self.retry_backoff_factor < 1.0:
            raise ConfigError("retry_backoff_factor must be >= 1")
        if self.retry_backoff_max_usec < self.retry_backoff_base_usec:
            raise ConfigError(
                "retry_backoff_max_usec must be >= retry_backoff_base_usec"
            )
        if self.phase_deadline_usec <= 0:
            raise ConfigError("phase_deadline_usec must be positive")
        if self.failure_mode not in ("degrade", "fail-fast"):
            raise ConfigError(f"unknown failure_mode {self.failure_mode!r}")


@dataclass
class HostConfig:
    """Host OS / CPU-side parameters."""

    #: Number of host threads used by CPU phases (e.g. OpenMP init).  Fig 11
    #: compares 1 vs. one-per-logical-core (64 on the Epyc 7551P).
    num_threads: int = 1
    #: Logical cores on the host (Epyc 7551P: 32 cores / 64 threads).
    num_cores: int = 64

    def validate(self) -> None:
        if self.num_threads <= 0:
            raise ConfigError("num_threads must be positive")
        if self.num_cores <= 0:
            raise ConfigError("num_cores must be positive")


@dataclass
class ObsConfig:
    """Observability settings (the :mod:`repro.obs` layer).

    Metrics and spans are cheap enough to default on; the Chrome trace
    retains one event per phase/fault/transfer and defaults off for sweeps.
    """

    #: Aggregate counters/gauges/histograms (``MetricsRegistry``).
    metrics: bool = True
    #: Sim-vs-wall phase spans (``SpanProfiler``).
    spans: bool = True
    #: Chrome trace-event timeline capture (``ChromeTraceBuilder``).
    chrome_trace: bool = False
    #: NDJSON structured-log path for batch records + trace events
    #: (None = no sink).
    ndjson_path: Optional[str] = None
    #: Ring-buffer cap for :class:`~repro.sim.trace.EventTrace`
    #: (None = unbounded, the pre-cap behaviour).
    trace_max_events: Optional[int] = None
    #: Retention cap for chrome-trace events (drops, never grows unbounded).
    chrome_max_events: int = 1_000_000
    #: Retention cap for completed spans (None = unbounded).
    max_spans: Optional[int] = None
    #: Always-on flight recorder: a bounded ring of recent structured events
    #: (batch open/close, retries, evictions, injections, violations) that
    #: crash bundles dump for post-mortem forensics.  Purely observational —
    #: the simulated timeline is bit-identical with it on or off.
    flight_recorder: bool = True
    #: Flight-recorder ring capacity (events retained, newest win).
    flight_cap: int = 512
    #: Directory crash bundles are written under on an unhandled
    #: :class:`~repro.errors.UvmError`, invariant violation, or injected
    #: crash (None = never write bundles).
    bundle_dir: Optional[str] = None

    def disabled(self) -> "ObsConfig":
        """A copy with every instrument off (perf-sensitive sweeps).

        The flight recorder goes dark too — unless a ``bundle_dir`` is set,
        in which case crash forensics stay armed (a dark cell that dies
        should still leave a bundle behind).
        """
        return dataclasses.replace(
            self,
            metrics=False,
            spans=False,
            chrome_trace=False,
            ndjson_path=None,
            flight_recorder=self.bundle_dir is not None,
        )

    def validate(self) -> None:
        if self.trace_max_events is not None and self.trace_max_events <= 0:
            raise ConfigError("trace_max_events must be positive or None")
        if self.chrome_max_events <= 0:
            raise ConfigError("chrome_max_events must be positive")
        if self.max_spans is not None and self.max_spans <= 0:
            raise ConfigError("max_spans must be positive or None")
        if self.flight_cap <= 0:
            raise ConfigError("flight_cap must be positive")


@dataclass
class CheckConfig:
    """UVMSan settings (the :mod:`repro.check` runtime sanitizer).

    Default off: the engine installs a null checker whose hooks are no-ops,
    mirroring :class:`ObsConfig`'s disabled instruments, so the fault path
    pays nothing when the sanitizer is not requested.  The sanitizer only
    *reads* simulator state — the simulated timeline is bit-identical with
    it on or off.

    The ``UVM_REPRO_SANITIZE`` environment variable flips the default for a
    whole process (``1`` → enabled in raise mode, ``report`` → enabled in
    report mode), which is how CI runs the full test suite sanitized
    without touching each test.
    """

    #: Master switch for all runtime invariant checks.
    enabled: bool = False
    #: "raise" aborts on the first violation with
    #: :class:`repro.errors.InvariantViolation`; "report" accumulates
    #: violations on the sanitizer for later inspection.
    mode: str = "raise"
    #: Report mode stops recording beyond this many violations (a broken
    #: invariant often fires once per batch; the cap bounds memory).
    max_violations: int = 1000

    @classmethod
    def from_env(cls) -> "CheckConfig":
        """Default config honouring ``UVM_REPRO_SANITIZE`` (see class doc)."""
        value = os.environ.get("UVM_REPRO_SANITIZE", "")
        if value in ("", "0"):
            return cls()
        if value == "report":
            return cls(enabled=True, mode="report")
        return cls(enabled=True, mode="raise")

    def validate(self) -> None:
        if self.mode not in ("raise", "report"):
            raise ConfigError(f"unknown sanitizer mode {self.mode!r}")
        if self.max_violations <= 0:
            raise ConfigError("max_violations must be positive")


@dataclass
class InjectConfig:
    """Fault-injection settings (the :mod:`repro.inject` chaos layer).

    Default off: the engine installs :data:`repro.inject.NULL_INJECTOR` and
    no component carries an injector reference, so the fault path is
    bit-identical with injection disabled — the same null-object contract as
    :class:`CheckConfig` / UVMSan.

    When enabled, every injection site draws from its own
    :func:`repro.sim.rng.spawn_rng` stream keyed off ``SystemConfig.seed``
    and the site name, so a (seed, profile) pair always produces the same
    injected-event schedule regardless of which other sites are active.
    """

    #: Master switch.  Off ⇒ null injector, zero overhead, identical runs.
    enabled: bool = False
    #: Named builtin profile (see ``repro.inject.profiles.BUILTIN_PROFILES``)
    #: or a path to a JSON profile file (``examples/chaos/*.json``).
    profile: Optional[str] = None
    #: Inline site table merged over the profile: maps a site name (e.g.
    #: ``"ce.transfer_fault"``) to its parameter dict (``rate``, ``factor``,
    #: ``at_batch``, ``waste_frac``).
    sites: dict = field(default_factory=dict)
    #: Auto-checkpoint period in completed batches (0 = checkpoint only once
    #: at kernel launch).  Checkpoints enable injected-crash recovery.
    checkpoint_every: int = 0
    #: Recover an injected ``engine.crash`` from the latest checkpoint in
    #: place.  When off the crash surfaces as
    #: :class:`repro.errors.InjectedCrash`.
    crash_recovery: bool = True
    #: Cap on the injector's (clock, site) event log used by the
    #: schedule-determinism property tests.
    max_events: int = 100_000

    def validate(self) -> None:
        if self.checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be >= 0")
        if self.max_events <= 0:
            raise ConfigError("max_events must be positive")
        if not self.enabled:
            return
        # Site names and parameter ranges are validated by the inject layer,
        # which owns the site catalogue (lazy import: config must not pull
        # the simulator packages in at import time).
        from .inject.profiles import validate_inject_config

        validate_inject_config(self)


@dataclass
class SystemConfig:
    """Aggregate configuration for one simulated system instance."""

    gpu: GpuConfig = field(default_factory=GpuConfig)
    driver: DriverConfig = field(default_factory=DriverConfig)
    host: HostConfig = field(default_factory=HostConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    check: CheckConfig = field(default_factory=CheckConfig.from_env)
    inject: InjectConfig = field(default_factory=InjectConfig)
    #: Seed for all stochastic components (workload shuffles, jitter).
    seed: int = 0
    #: Structure-of-arrays fault pipeline (SoA fault buffer + vectorized
    #: batch assembly + bulk issuance windows).  Bit-identical to the scalar
    #: path by contract (property-tested); ``REPRO_SOA=0`` in the environment
    #: is the bring-up escape hatch that restores the per-fault-object path.
    soa: bool = field(default_factory=lambda: os.environ.get("REPRO_SOA", "1") != "0")
    #: Cost-model overrides, applied as attribute assignments on the default
    #: :class:`repro.hostos.cost_model.CostModel`.
    cost_overrides: dict = field(default_factory=dict)

    def validate(self) -> None:
        self.gpu.validate()
        self.driver.validate()
        self.host.validate()
        self.obs.validate()
        self.check.validate()
        self.inject.validate()

    def replace(self, **kwargs) -> "SystemConfig":
        """Return a deep-copied config with top-level fields replaced."""
        clone = dataclasses.replace(
            self,
            gpu=dataclasses.replace(self.gpu),
            driver=dataclasses.replace(self.driver),
            host=dataclasses.replace(self.host),
            obs=dataclasses.replace(self.obs),
            check=dataclasses.replace(self.check),
            inject=dataclasses.replace(self.inject, sites=dict(self.inject.sites)),
            cost_overrides=dict(self.cost_overrides),
        )
        for key, value in kwargs.items():
            if not hasattr(clone, key):
                raise ConfigError(f"unknown SystemConfig field {key!r}")
            setattr(clone, key, value)
        return clone


def apply_config_overrides(config: SystemConfig, overrides: dict) -> SystemConfig:
    """Apply dotted-path overrides to ``config`` in place and return it.

    Keys name attributes through the config tree (``"driver.batch_size"``,
    ``"gpu.memory_bytes"``, ``"seed"``); values replace the current
    attribute.  This is the campaign-spec override mechanism
    (:mod:`repro.campaign`): a JSON spec can tweak any validated field
    without code.  Unknown paths raise :class:`ConfigError`; so does a value
    whose type contradicts the field (bools are not numbers here, even
    though Python says otherwise).  Keys apply in sorted order so the result
    never depends on dict iteration.
    """
    for path in sorted(overrides):
        value = overrides[path]
        target = config
        parts = path.split(".")
        for part in parts[:-1]:
            if not hasattr(target, part):
                raise ConfigError(f"unknown config path {path!r}")
            target = getattr(target, part)
        leaf = parts[-1]
        if not hasattr(target, leaf):
            raise ConfigError(f"unknown config path {path!r}")
        current = getattr(target, leaf)
        if isinstance(current, bool) and not isinstance(value, bool):
            raise ConfigError(f"config path {path!r} expects a bool, got {value!r}")
        if isinstance(current, (int, float)) and not isinstance(current, bool):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigError(
                    f"config path {path!r} expects a number, got {value!r}"
                )
            if isinstance(current, float):
                value = float(value)
            elif isinstance(value, float):
                if not value.is_integer():
                    raise ConfigError(
                        f"config path {path!r} expects an integer, got {value!r}"
                    )
                value = int(value)
        setattr(target, leaf, value)
    config.validate()
    return config


def default_config(**driver_overrides) -> SystemConfig:
    """A validated default configuration, optionally overriding driver fields.

    >>> cfg = default_config(prefetch_enabled=False, batch_size=512)
    """
    cfg = SystemConfig()
    for key, value in driver_overrides.items():
        if not hasattr(cfg.driver, key):
            raise ConfigError(f"unknown DriverConfig field {key!r}")
        setattr(cfg.driver, key, value)
    cfg.validate()
    return cfg
