"""Exception hierarchy for the UVM reproduction library."""

from __future__ import annotations


class UvmError(Exception):
    """Base class for all library errors."""


class ConfigError(UvmError):
    """Invalid or inconsistent :class:`repro.config.SystemConfig`."""


class AllocationError(UvmError):
    """Managed or device allocation failed (e.g. address space exhausted)."""


class OutOfDeviceMemory(AllocationError):
    """Device chunk allocator has no free chunk and eviction found no victim."""


class FaultBufferOverflow(UvmError):
    """Raised only in strict mode; normally overflowing faults are dropped."""


class InvalidAccess(UvmError):
    """A workload accessed an address outside any managed allocation."""


class SimulationError(UvmError):
    """The simulation reached an inconsistent state (internal bug guard)."""


class DeadlockError(SimulationError):
    """No warp can make progress and no faults are outstanding."""


class InjectedFault(UvmError):
    """Base class for failures raised by the :mod:`repro.inject` layer.

    These model *transient hardware/OS failures*, not simulator bugs: the
    driver's retry/backoff/failover policy is expected to absorb them.
    """


class TransferFault(InjectedFault):
    """A copy-engine burst aborted mid-flight (transient interconnect error).

    ``wasted_usec`` is the simulated time the engine spent before the abort;
    the driver charges it to the batch's retry timer and re-issues the burst.
    """

    def __init__(self, engine_id: int, wasted_usec: float) -> None:
        self.engine_id = engine_id
        self.wasted_usec = wasted_usec
        super().__init__(
            f"copy engine {engine_id} burst aborted after {wasted_usec:.2f}us"
        )


class TransferStuck(InjectedFault):
    """A copy-engine burst hung past the per-phase deadline.

    The driver charges the deadline, marks the engine suspect, and fails the
    transfer over to the sibling engine.
    """

    def __init__(self, engine_id: int) -> None:
        self.engine_id = engine_id
        super().__init__(f"copy engine {engine_id} stuck past the phase deadline")


class DmaMapFault(InjectedFault):
    """``dma_map_pages`` failed transiently (IOMMU/IOVA exhaustion model)."""

    def __init__(self, num_pages: int) -> None:
        self.num_pages = num_pages
        super().__init__(f"DMA mapping of {num_pages} pages failed transiently")


class PopulateEnomem(InjectedFault):
    """Host page population hit ENOMEM; the driver must create pressure
    (evict) and retry."""


class InjectedCrash(InjectedFault):
    """A simulated whole-process crash fired at a batch boundary.

    Surfaces only when :attr:`repro.config.InjectConfig.crash_recovery` is
    off; otherwise the engine restores its latest checkpoint in place.
    """

    def __init__(self, batch_id: int, clock_usec: float) -> None:
        self.batch_id = batch_id
        self.clock_usec = clock_usec
        super().__init__(
            f"injected crash after batch {batch_id} at {clock_usec:.2f}us"
        )


class RetryExhausted(UvmError):
    """The driver's retry budget ran out in fail-fast mode.

    Carries the failing site and attempt count so chaos reports can
    attribute the abort.
    """

    def __init__(self, site: str, attempts: int, last_error: Exception) -> None:
        self.site = site
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"{site}: {attempts} attempts exhausted ({last_error})"
        )


class InvariantViolation(SimulationError):
    """A UVMSan runtime invariant failed (see :mod:`repro.check.sanitizer`).

    Carries the structured context the sanitizer captured at the failure
    point: the rule id, the simulated clock, and (when inside the fault
    path) the batch being serviced.
    """

    def __init__(
        self,
        rule: str,
        detail: str,
        clock_usec: float = 0.0,
        batch_id=None,
        context=None,
    ) -> None:
        self.rule = rule
        self.detail = detail
        self.clock_usec = clock_usec
        self.batch_id = batch_id
        self.context = dict(context) if context else {}
        where = f"clock={clock_usec:.3f}us"
        if batch_id is not None:
            where += f", batch={batch_id}"
        if self.context:
            ctx = ", ".join(f"{k}={v}" for k, v in sorted(self.context.items()))
            where += f", {ctx}"
        super().__init__(f"[{rule}] {detail} ({where})")

    def to_dict(self) -> dict:
        """JSON-serializable form (report mode / ``repro validate``)."""
        return {
            "rule": self.rule,
            "detail": self.detail,
            "clock_usec": self.clock_usec,
            "batch_id": self.batch_id,
            "context": self.context,
        }
