"""Exception hierarchy for the UVM reproduction library."""

from __future__ import annotations


class UvmError(Exception):
    """Base class for all library errors."""


class ConfigError(UvmError):
    """Invalid or inconsistent :class:`repro.config.SystemConfig`."""


class AllocationError(UvmError):
    """Managed or device allocation failed (e.g. address space exhausted)."""


class OutOfDeviceMemory(AllocationError):
    """Device chunk allocator has no free chunk and eviction found no victim."""


class FaultBufferOverflow(UvmError):
    """Raised only in strict mode; normally overflowing faults are dropped."""


class InvalidAccess(UvmError):
    """A workload accessed an address outside any managed allocation."""


class SimulationError(UvmError):
    """The simulation reached an inconsistent state (internal bug guard)."""


class DeadlockError(SimulationError):
    """No warp can make progress and no faults are outstanding."""


class InvariantViolation(SimulationError):
    """A UVMSan runtime invariant failed (see :mod:`repro.check.sanitizer`).

    Carries the structured context the sanitizer captured at the failure
    point: the rule id, the simulated clock, and (when inside the fault
    path) the batch being serviced.
    """

    def __init__(
        self,
        rule: str,
        detail: str,
        clock_usec: float = 0.0,
        batch_id=None,
        context=None,
    ) -> None:
        self.rule = rule
        self.detail = detail
        self.clock_usec = clock_usec
        self.batch_id = batch_id
        self.context = dict(context) if context else {}
        where = f"clock={clock_usec:.3f}us"
        if batch_id is not None:
            where += f", batch={batch_id}"
        if self.context:
            ctx = ", ".join(f"{k}={v}" for k, v in sorted(self.context.items()))
            where += f", {ctx}"
        super().__init__(f"[{rule}] {detail} ({where})")

    def to_dict(self) -> dict:
        """JSON-serializable form (report mode / ``repro validate``)."""
        return {
            "rule": self.rule,
            "detail": self.detail,
            "clock_usec": self.clock_usec,
            "batch_id": self.batch_id,
            "context": self.context,
        }
