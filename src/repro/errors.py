"""Exception hierarchy for the UVM reproduction library."""

from __future__ import annotations


class UvmError(Exception):
    """Base class for all library errors."""


class ConfigError(UvmError):
    """Invalid or inconsistent :class:`repro.config.SystemConfig`."""


class AllocationError(UvmError):
    """Managed or device allocation failed (e.g. address space exhausted)."""


class OutOfDeviceMemory(AllocationError):
    """Device chunk allocator has no free chunk and eviction found no victim."""


class FaultBufferOverflow(UvmError):
    """Raised only in strict mode; normally overflowing faults are dropped."""


class InvalidAccess(UvmError):
    """A workload accessed an address outside any managed allocation."""


class SimulationError(UvmError):
    """The simulation reached an inconsistent state (internal bug guard)."""


class DeadlockError(SimulationError):
    """No warp can make progress and no faults are outstanding."""
