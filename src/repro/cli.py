"""Command-line interface: ``uvm-repro`` / ``python -m repro``.

Subcommands:

* ``list`` — show all registered experiments and workloads;
* ``run <exp_id> [...]`` — run experiments and print their rendered output;
* ``all`` — run the full suite in order (the paper's evaluation end-to-end);
* ``breakdown <workload>`` — run a workload and attribute its batch time to
  fault-path components (the paper's central decomposition);
* ``export <workload> --out DIR`` — run a workload and dump its per-batch
  timeline / scatter / per-SM CSVs for external plotting (``--trace`` adds
  the Chrome trace JSON);
* ``trace <workload> --out FILE`` — run a workload with the Chrome-trace
  recorder on and write a Perfetto-loadable timeline;
* ``metrics <workload>`` — run a workload and print its metrics registry
  (Prometheus text, or ``--json`` for the snapshot dict);
* ``lint [paths...]`` — whole-program static analysis over the simulator
  sources: per-file determinism rules plus the interprocedural sim-taint,
  metric-drift, mp-shared-state, suppression-hygiene, and dimensions
  (bytes/page/µs unit inference) passes, filtered
  through the allowlist and the committed baseline (exit 0 clean / 1
  findings / 2 usage error; ``--format json|sarif`` for machine output,
  ``--changed-only`` to scope reporting to a git diff);
* ``validate <workload>`` — run a workload with UVMSan in report mode and
  print the validation verdict (non-zero exit on violations or a crashed
  run; ``--json`` for a machine-readable verdict with an ``ok`` field);
* ``chaos <workload> --profile NAME`` — run a workload under a
  fault-injection profile (:mod:`repro.inject`) with UVMSan in report mode
  and print the chaos verdict (same JSON/exit-code contract as
  ``validate``; ``--list-profiles`` shows the bundled profiles);
* ``campaign <spec.json>`` — expand a campaign spec (workloads × configs ×
  seeds) and run every cell across a supervised worker fleet with a
  content-addressed result cache; the NDJSON output is byte-identical for
  any ``--jobs`` value, kill pattern, or resume path (see
  ``docs/performance.md`` and ``docs/fleet.md``); ``--watch`` renders live
  progress from worker telemetry, ``--telemetry`` logs the lifecycle
  events, ``--bundle-dir`` arms per-cell crash bundles, ``--ledger`` +
  ``--resume`` persist per-job state for crash recovery, and
  ``--kill-worker``/``--hang-worker`` arm the fleet's chaos harness
  (exit 0 clean / 1 failed cells / 2 usage error or interrupt);
* ``analyze <input...>`` — post-hoc report over observability NDJSON logs
  or crash-bundle directories: fault-latency percentiles, per-phase stall
  attribution, overflow-storm/thrashing detectors; ``--diff A B`` compares
  two logs with a relative tolerance (see ``docs/diagnostics.md``);
* ``bench`` — run ``benchmarks/bench_simperf.py``; ``--check`` gates the
  fresh run against the committed ``BENCH_baseline.json`` and exits
  non-zero on a performance regression (the CI ``bench-gate`` job).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .analysis.experiments import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="uvm-repro",
        description=(
            "Reproduction of 'In-Depth Analyses of Unified Virtual Memory "
            "System for GPU Accelerated Computing' (SC '21)"
        ),
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments and workloads")

    run_p = sub.add_parser("run", help="run one or more experiments")
    run_p.add_argument("experiments", nargs="+", metavar="EXP",
                       help="experiment ids, e.g. fig07 tab02")

    sub.add_parser("all", help="run every experiment in order")

    def add_workload_args(p):
        p.add_argument("workload", help="workload name (see `list`)")
        p.add_argument("--no-prefetch", action="store_true",
                       help="disable the driver prefetcher")
        p.add_argument("--gpu-mb", type=int, default=64,
                       help="device memory in MiB (default 64)")
        p.add_argument("--seed", type=int, default=None,
                       help="override the simulation seed")

    bd = sub.add_parser("breakdown", help="cost attribution for a workload run")
    add_workload_args(bd)

    ex = sub.add_parser("export", help="dump a workload run's data as CSV")
    add_workload_args(ex)
    ex.add_argument("--out", default="export", help="output directory")
    ex.add_argument("--trace", action="store_true",
                    help="also record and write the Chrome trace JSON")

    tr = sub.add_parser(
        "trace", help="record a workload as a Chrome/Perfetto trace"
    )
    add_workload_args(tr)
    tr.add_argument("--out", default="trace.json",
                    help="output trace file (default trace.json)")

    mt = sub.add_parser(
        "metrics", help="run a workload and print its metrics registry"
    )
    add_workload_args(mt)
    mt.add_argument("--json", action="store_true",
                    help="print the snapshot dict as JSON instead of "
                         "Prometheus text")
    mt.add_argument("--percentiles", action="store_true",
                    help="also print p50/p95/p99 for every histogram series")

    cmp_p = sub.add_parser(
        "compare", help="A/B a workload: prefetch on vs off (or custom caps)"
    )
    cmp_p.add_argument("workload", help="workload name (see `list`)")
    cmp_p.add_argument("--gpu-mb", type=int, default=64)
    cmp_p.add_argument("--seed", type=int, default=None,
                       help="override the simulation seed")
    cmp_p.add_argument(
        "--batch-sizes",
        nargs=2,
        type=int,
        metavar=("A", "B"),
        help="compare two batch caps instead of prefetch on/off",
    )

    lint_p = sub.add_parser(
        "lint",
        help="whole-program static analysis over the simulator sources",
    )
    lint_p.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint_p.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human",
        help="output format (default human)",
    )
    lint_p.add_argument(
        "--allowlist", default=None,
        help="allowlist file (default: repro/check/lint_allow.txt)",
    )
    lint_p.add_argument(
        "--no-allowlist", action="store_true",
        help="ignore the allowlist entirely",
    )
    lint_p.add_argument(
        "--baseline", default=None,
        help="finding baseline file (default: repro/check/lint_baseline.json "
             "when linting the default target)",
    )
    lint_p.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline; report every finding",
    )
    lint_p.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline file to match current findings "
             "(existing per-entry reasons are preserved) and exit 0",
    )
    lint_p.add_argument(
        "--changed-only", action="store_true",
        help="report findings only in files changed vs --base-ref (the "
             "analysis itself stays whole-program; falls back to the full "
             "report outside a git checkout)",
    )
    lint_p.add_argument(
        "--base-ref", default="HEAD",
        help="git ref --changed-only diffs against (default HEAD)",
    )

    val_p = sub.add_parser(
        "validate",
        help="run a workload with UVMSan in report mode and validate the run",
    )
    add_workload_args(val_p)
    val_p.add_argument("--json", action="store_true",
                       help="print the verdict as JSON")

    ch_p = sub.add_parser(
        "chaos",
        help="run a workload under a fault-injection profile with UVMSan "
             "in report mode",
    )
    ch_p.add_argument("workload", nargs="?", default=None,
                      help="workload name (see `list`)")
    ch_p.add_argument("--no-prefetch", action="store_true",
                      help="disable the driver prefetcher")
    ch_p.add_argument("--gpu-mb", type=int, default=64,
                      help="device memory in MiB (default 64)")
    ch_p.add_argument("--seed", type=int, default=None,
                      help="override the simulation seed")
    ch_p.add_argument("--profile", default="kitchen-sink",
                      help="builtin profile name or JSON profile file "
                           "(default kitchen-sink; see --list-profiles)")
    ch_p.add_argument("--checkpoint-every", type=int, default=8,
                      help="auto-checkpoint period in batches for crash "
                           "recovery (default 8; 0 = launch start only)")
    ch_p.add_argument("--json", action="store_true",
                      help="print the chaos report as JSON")
    ch_p.add_argument("--list-profiles", action="store_true",
                      help="list bundled injection profiles and exit")
    ch_p.add_argument("--bundle-dir", default="uvm-bundles",
                      help="directory for crash bundles (default "
                           "uvm-bundles; 'none' disables bundle writes)")
    ch_p.add_argument("--no-recovery", action="store_true",
                      help="disable checkpoint crash recovery: an injected "
                           "crash kills the run (and writes a bundle)")

    cam = sub.add_parser(
        "campaign",
        help="run a campaign spec (workloads x configs x seeds) across a "
             "worker pool with cached results",
    )
    cam.add_argument("spec", help="campaign spec JSON file")
    cam.add_argument("--jobs", type=int, default=1,
                     help="worker processes (default 1; output is "
                          "byte-identical for any value)")
    cam.add_argument("--out", default=None,
                     help="NDJSON output file (default: <spec name>.ndjson)")
    cam.add_argument("--cache-dir", default=".uvm-campaign-cache",
                     help="result cache directory "
                          "(default .uvm-campaign-cache)")
    cam.add_argument("--no-cache", action="store_true",
                     help="recompute every cell, reading and writing no cache")
    cam.add_argument("--watch", action="store_true",
                     help="render live progress (jobs done/running/failed, "
                          "cache hit rate, batches/sec, ETA) while the "
                          "pool works")
    cam.add_argument("--telemetry", default=None, metavar="PATH",
                     help="write worker lifecycle events (job start/done/"
                          "failed, heartbeats) to an NDJSON file")
    cam.add_argument("--stall-timeout", type=float, default=30.0,
                     help="seconds of heartbeat silence before the fleet "
                          "escalates a stalled worker SIGTERM->SIGKILL "
                          "(and --watch flags it; default 30)")
    cam.add_argument("--bundle-dir", default=None,
                     help="arm per-cell crash bundles under this directory "
                          "(cell i writes <dir>/cell-<i>)")
    cam.add_argument("--ledger", default=None, metavar="PATH",
                     help="persistent SQLite run ledger (per-job state, "
                          "attempts, checkpoints); default <out>.ledger "
                          "when --resume is given")
    cam.add_argument("--resume", action="store_true",
                     help="resume a previous run from its ledger: done "
                          "rows replay verbatim, half-finished jobs "
                          "restart from their latest checkpoint")
    cam.add_argument("--max-attempts", type=int, default=3,
                     help="fleet retry budget per job for transient "
                          "failure classes (crash/hang/oom; default 3)")
    cam.add_argument("--term-grace", type=float, default=5.0,
                     help="seconds between SIGTERM and SIGKILL when "
                          "escalating a stalled worker (default 5)")
    cam.add_argument("--checkpoint-every", type=int, default=8,
                     help="cell auto-checkpoint cadence in serviced "
                          "batches, when a ledger is active (default 8)")
    cam.add_argument("--kill-worker", action="append", default=[],
                     metavar="IDX:BATCH",
                     help="chaos harness: SIGKILL the worker running cell "
                          "IDX at batch BATCH (first attempt only; "
                          "repeatable)")
    cam.add_argument("--hang-worker", action="append", default=[],
                     metavar="IDX:BATCH",
                     help="chaos harness: SIGSTOP the worker running cell "
                          "IDX at batch BATCH so stall escalation engages "
                          "(first attempt only; repeatable)")

    an = sub.add_parser(
        "analyze",
        help="post-hoc analysis of NDJSON logs, campaign rows, or crash "
             "bundles (fault-latency percentiles, phase stall attribution, "
             "overflow/thrashing detectors, A/B diff)",
    )
    an.add_argument("inputs", nargs="+",
                    help="NDJSON log file(s) or crash-bundle directory(ies)")
    an.add_argument("--diff", action="store_true",
                    help="compare exactly two record inputs (A B); exit 1 "
                         "when any metric moves beyond --tolerance")
    an.add_argument("--tolerance", type=float, default=0.10,
                    help="relative tolerance for --diff (default 0.10)")
    an.add_argument("--json", action="store_true",
                    help="print reports as JSON")

    be = sub.add_parser(
        "bench",
        help="run the micro-benchmark suite (benchmarks/bench_simperf.py); "
             "--check gates against the committed baseline",
    )
    be.add_argument("--check", action="store_true",
                    help="compare against the baseline and exit non-zero "
                         "on a performance regression")
    be.add_argument("--baseline", default=None,
                    help="baseline JSON (default BENCH_baseline.json at the "
                         "repo root)")
    be.add_argument("--report", default=None,
                    help="use a pre-computed bench report JSON instead of "
                         "running the suite (testing/CI replay)")
    be.add_argument("--out", default=None,
                    help="write the fresh bench report JSON to this path")
    be.add_argument("--tolerance", type=float, default=0.35,
                    help="allowed relative speedup drop vs baseline "
                         "(default 0.35 — run-to-run speedup noise reaches "
                         "~25%%; a real 2x slowdown is a 50%% drop)")
    be.add_argument("--json", action="store_true",
                    help="print the bench report as JSON")
    return parser


def _run_workload(args, chrome_trace: bool = False, tweak_config=None):
    from .api import UvmSystem
    from .config import default_config
    from .units import MB
    from .workloads import WORKLOAD_REGISTRY

    if args.workload not in WORKLOAD_REGISTRY:
        print(
            f"error: unknown workload {args.workload!r}; "
            f"known: {', '.join(sorted(WORKLOAD_REGISTRY))}",
            file=sys.stderr,
        )
        return None, None
    cfg = default_config(prefetch_enabled=not args.no_prefetch)
    cfg.gpu.memory_bytes = args.gpu_mb * MB
    if getattr(args, "seed", None) is not None:
        cfg.seed = args.seed
    if chrome_trace:
        cfg.obs.chrome_trace = True
    if tweak_config is not None:
        tweak_config(cfg)
    system = UvmSystem(cfg)
    try:
        result = WORKLOAD_REGISTRY[args.workload]().run(system)
    except Exception as exc:
        # Callers that report crashes (chaos) need the dead system — e.g.
        # the crash-bundle path the engine just wrote — so ride it on the
        # exception rather than widening every return site.
        exc.uvm_system = system
        raise
    return system, result


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command in (None, "list"):
        from .workloads import WORKLOAD_REGISTRY

        print("Available experiments:")
        for exp_id in EXPERIMENTS:
            doc = (EXPERIMENTS[exp_id].__doc__ or "").strip().splitlines()[0]
            print(f"  {exp_id:24s} {doc}")
        print("\nAvailable workloads (for `breakdown` / `export`):")
        print("  " + ", ".join(sorted(WORKLOAD_REGISTRY)))
        return 0

    if args.command == "breakdown":
        from .analysis.breakdown import host_os_share, render_breakdown, wire_share
        from .units import fmt_usec

        system, result = _run_workload(args)
        if system is None:
            return 2
        print(
            render_breakdown(
                result.records,
                title=f"{args.workload}: fault-path cost attribution "
                f"({result.num_batches} batches, "
                f"batch time {fmt_usec(result.batch_time_usec)})",
            )
        )
        print(f"\nhost-OS share (unmap + DMA/radix): {host_os_share(result.records):.1%}")
        print(f"interconnect share (wire time)    : {wire_share(result.records):.1%}")
        return 0

    if args.command == "compare":
        from .analysis.compare import compare_configs
        from .config import default_config
        from .units import MB
        from .workloads import WORKLOAD_REGISTRY

        if args.workload not in WORKLOAD_REGISTRY:
            print(f"error: unknown workload {args.workload!r}", file=sys.stderr)
            return 2
        factory = WORKLOAD_REGISTRY[args.workload]

        def cfg(**kw):
            c = default_config(**kw)
            c.gpu.memory_bytes = args.gpu_mb * MB
            if args.seed is not None:
                c.seed = args.seed
            return c

        if args.batch_sizes:
            a, b = args.batch_sizes
            comparison = compare_configs(
                factory,
                cfg(batch_size=a),
                cfg(batch_size=b),
                label_a=f"cap {a}",
                label_b=f"cap {b}",
            )
        else:
            comparison = compare_configs(
                factory,
                cfg(prefetch_enabled=True),
                cfg(prefetch_enabled=False),
                label_a="prefetch on",
                label_b="prefetch off",
            )
        print(comparison.render())
        return 0

    if args.command == "export":
        from pathlib import Path

        from .analysis.export import (
            export_batch_timeline,
            export_scatter,
            export_sm_histogram,
        )

        system, result = _run_workload(args, chrome_trace=args.trace)
        if system is None:
            return 2
        out = Path(args.out)
        paths = [
            export_batch_timeline(result.records, out / f"{args.workload}_timeline.csv"),
            export_scatter(result.records, out / f"{args.workload}_time_vs_bytes.csv"),
            export_sm_histogram(result.records, out / f"{args.workload}_sm_faults.csv"),
        ]
        if args.trace:
            paths.append(system.export_chrome_trace(out / f"{args.workload}_trace.json"))
        for path in paths:
            print(f"wrote {path}")
        return 0

    if args.command == "trace":
        system, result = _run_workload(args, chrome_trace=True)
        if system is None:
            return 2
        path = system.export_chrome_trace(args.out)
        chrome = system.obs.chrome
        print(
            f"wrote {path} ({len(chrome)} events, {chrome.num_tracks} tracks, "
            f"{result.num_batches} batches, {result.total_faults} faults)"
        )
        return 0

    if args.command == "metrics":
        import json as _json

        system, result = _run_workload(args)
        if system is None:
            return 2
        if args.json:
            print(_json.dumps(system.metrics_snapshot(), indent=2, sort_keys=True))
        else:
            print(system.prometheus_metrics(), end="")
        if args.percentiles:
            registry = system.metrics
            print("# histogram percentiles (p50/p95/p99)")
            for name in sorted(system.metrics_snapshot()):
                family = registry.family(name)
                if family.kind != "histogram":
                    continue
                for key, child in sorted(family.series.items()):
                    labels = (
                        "{" + ",".join(
                            f'{k}="{v}"'
                            for k, v in zip(family.label_names, key)
                        ) + "}"
                        if key
                        else ""
                    )
                    qs = child.quantiles()
                    stats = "  ".join(
                        f"{q}={'n/a' if v is None else f'{v:.1f}'}"
                        for q, v in qs.items()
                    )
                    print(f"{name}{labels}: {stats} (count {child.count})")
        return 0

    if args.command == "lint":
        import json as _json
        from pathlib import Path

        from .check.lint import DEFAULT_ALLOWLIST_PATH, load_allowlist
        from .check.program import (
            DEFAULT_BASELINE_PATH,
            changed_files,
            load_baseline,
            render_report,
            report_to_json_dict,
            run_analysis,
            sarif_to_json,
            save_baseline,
            seeds_in_changed,
            to_sarif,
        )
        from .errors import ConfigError

        if args.paths:
            paths = [Path(p) for p in args.paths]
        else:
            paths = [Path(__file__).resolve().parent]

        try:
            if args.no_allowlist:
                allowlist, allow_path = [], ""
            else:
                allow_path = (
                    Path(args.allowlist) if args.allowlist
                    else DEFAULT_ALLOWLIST_PATH
                )
                allowlist = load_allowlist(allow_path)

            # The committed baseline applies to the default target; explicit
            # path lists get one only when --baseline names it.
            baseline_path = None
            if not args.no_baseline and not args.write_baseline:
                if args.baseline:
                    baseline_path = Path(args.baseline)
                elif not args.paths and DEFAULT_BASELINE_PATH.exists():
                    baseline_path = DEFAULT_BASELINE_PATH
            baseline = load_baseline(baseline_path) if baseline_path else []
        except (ConfigError, ValueError, OSError) as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2

        changed = None
        if args.changed_only:
            changed = changed_files(args.base_ref)
            if changed is None:
                print(
                    "lint: --changed-only needs a git checkout; "
                    "falling back to the full report",
                    file=sys.stderr,
                )
            else:
                # Analysis seeds (units table, obs catalog, protocol
                # catalog, checkpoint skip sets, allow/baseline files)
                # parameterize findings in *other* files — a diff touching
                # one invalidates every file's results, so restricting the
                # report to the diff would silently hide regressions.
                seeds = seeds_in_changed(changed)
                if seeds:
                    print(
                        "lint: analysis seed(s) changed "
                        f"({', '.join(sorted(seeds))}); "
                        "widening --changed-only to the full report",
                        file=sys.stderr,
                    )
                    changed = None

        report = run_analysis(
            paths,
            allowlist=allowlist,
            allowlist_path=str(allow_path),
            baseline=baseline,
            changed=changed,
        )

        if args.write_baseline:
            target = Path(args.baseline) if args.baseline else DEFAULT_BASELINE_PATH
            reasons = {}
            if target.exists():
                try:
                    reasons = {
                        e.fingerprint: e.reason for e in load_baseline(target)
                    }
                except ConfigError:
                    pass
            save_baseline(target, report.findings, reasons=reasons,
                          stable_paths=report.stable_paths)
            print(
                f"lint: wrote {len(report.findings)} entr"
                f"{'y' if len(report.findings) == 1 else 'ies'} to {target}"
            )
            return 0

        if args.format == "json":
            print(_json.dumps(report_to_json_dict(report), indent=2,
                              sort_keys=True))
        elif args.format == "sarif":
            from . import __version__ as _version

            root = paths[0] if len(paths) == 1 and paths[0].is_dir() \
                else Path.cwd()
            print(sarif_to_json(
                to_sarif(report.findings, report.rules,
                         tool_version=_version, root=root)
            ))
        else:
            print(render_report(report))
        return 0 if report.ok else 1

    if args.command == "validate":
        import json as _json

        from .errors import UvmError
        from .validate import validate_system

        def _enable_sanitizer(cfg):
            cfg.check.enabled = True
            cfg.check.mode = "report"

        try:
            system, result = _run_workload(args, tweak_config=_enable_sanitizer)
        except UvmError as exc:
            # A crashed run is a failed validation, not a traceback: emit a
            # structured verdict and the same non-zero exit.
            verdict = {
                "workload": args.workload,
                "error": f"{type(exc).__name__}: {exc}",
                "violations": [],
                "ok": False,
            }
            if args.json:
                print(_json.dumps(verdict, indent=2, sort_keys=True))
            else:
                print(f"{args.workload}: run FAILED — {verdict['error']}")
            return 1
        if system is None:
            return 2
        violations = validate_system(system)
        summary = system.sanitizer.summary()
        ok = not violations and summary["violations"] == 0
        if args.json:
            print(
                _json.dumps(
                    {
                        "workload": args.workload,
                        "batches": result.num_batches,
                        "faults": result.total_faults,
                        "violations": [str(v) for v in violations],
                        "sanitizer": summary,
                        "ok": ok,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(
                f"{args.workload}: {result.num_batches} batches, "
                f"{result.total_faults} faults"
            )
            print(
                f"UVMSan: mode={summary['mode']}, "
                f"{summary['violations']} runtime violations"
            )
            for rule, count in sorted(summary["by_rule"].items()):
                print(f"  {rule}: {count}")
            if violations:
                print(f"validation FAILED ({len(violations)} violations):")
                for v in violations:
                    print(f"  {v}")
            else:
                print("validation OK: every invariant held")
        return 0 if ok else 1

    if args.command == "chaos":
        import json as _json

        from .errors import ConfigError, UvmError
        from .inject.chaos import (
            build_chaos_report,
            crash_report,
            render_chaos_report,
        )
        from .inject.profiles import BUILTIN_PROFILES

        if args.list_profiles:
            print("Bundled injection profiles:")
            for name in sorted(BUILTIN_PROFILES):
                sites = ", ".join(sorted(BUILTIN_PROFILES[name]))
                print(f"  {name:20s} {sites}")
            return 0
        if args.workload is None:
            print("error: a workload is required (or --list-profiles)",
                  file=sys.stderr)
            return 2

        def _enable_chaos(cfg):
            cfg.check.enabled = True
            cfg.check.mode = "report"
            cfg.inject.enabled = True
            cfg.inject.profile = args.profile
            cfg.inject.checkpoint_every = args.checkpoint_every
            if args.no_recovery:
                cfg.inject.crash_recovery = False
            if args.bundle_dir and args.bundle_dir != "none":
                cfg.obs.bundle_dir = args.bundle_dir

        try:
            system, result = _run_workload(args, tweak_config=_enable_chaos)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except UvmError as exc:
            report = crash_report(args.workload, args.profile, exc)
            crashed = getattr(exc, "uvm_system", None)
            bundle = crashed.engine.last_bundle if crashed is not None else None
            report["bundle"] = str(bundle) if bundle else None
            if args.json:
                print(_json.dumps(report, indent=2, sort_keys=True))
            else:
                print(render_chaos_report(report))
                if bundle:
                    print(f"crash bundle: {bundle} "
                          f"(inspect with `uvm-repro analyze {bundle}`)")
            return 1
        if system is None:
            return 2
        report = build_chaos_report(system, result, args.workload)
        if args.json:
            print(_json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_chaos_report(report))
        return 0 if report["ok"] else 1

    if args.command == "campaign":
        from pathlib import Path

        from .campaign import (
            CampaignInterrupted,
            CampaignSpec,
            FleetChaos,
            FleetConfig,
            FleetRetryPolicy,
            ResultCache,
            RunLedger,
            run_campaign,
            to_ndjson,
        )
        from .errors import ConfigError

        try:
            spec = CampaignSpec.from_file(args.spec)
        except OSError as exc:
            print(f"error: cannot read spec: {exc}", file=sys.stderr)
            return 2
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.jobs < 1:
            print("error: --jobs must be >= 1", file=sys.stderr)
            return 2
        try:
            chaos = FleetChaos.parse(args.kill_worker, args.hang_worker)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        out_path = Path(args.out) if args.out else Path(f"{spec.name}.ndjson")
        ledger_path = args.ledger
        if ledger_path is None and args.resume:
            ledger_path = f"{out_path}.ledger"
        cache = None if args.no_cache else ResultCache(args.cache_dir)
        fleet_config = FleetConfig(
            retry=FleetRetryPolicy(max_attempts=max(1, args.max_attempts)),
            stall_timeout_sec=args.stall_timeout,
            term_grace_sec=args.term_grace,
            checkpoint_every=args.checkpoint_every,
            chaos=None if chaos.empty else chaos,
        )
        monitor = None
        ledger = None
        t0 = time.perf_counter()
        try:
            # Both resources are acquired inside the guarded region so a
            # failure acquiring the second can never strand the first.
            if args.watch or args.telemetry:
                from .campaign.telemetry import CampaignMonitor

                monitor = CampaignMonitor(
                    len(spec.cells),
                    path=args.telemetry,
                    stall_timeout_sec=args.stall_timeout,
                    watch=args.watch,
                    mp_safe=False,
                )
            if ledger_path is not None:
                ledger = RunLedger(ledger_path)
            outcome = run_campaign(
                spec,
                jobs=args.jobs,
                cache=cache,
                bundle_dir=args.bundle_dir,
                monitor=monitor,
                ledger=ledger,
                resume=args.resume,
                fleet_config=fleet_config,
            )
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except CampaignInterrupted as exc:
            # Finished rows are safe in the ledger; write what resolved and
            # leave the rest to `campaign --resume`.
            done = [row for row in exc.rows if row is not None]
            out_path.parent.mkdir(parents=True, exist_ok=True)
            out_path.write_text(to_ndjson(done), encoding="utf-8")
            print(f"interrupted: {exc}", file=sys.stderr)
            if ledger is not None:
                print(
                    f"resume with: uvm-repro campaign {args.spec} --resume "
                    f"--ledger {ledger.path}",
                    file=sys.stderr,
                )
            return 2
        finally:
            # Nested so a ledger.close() failure cannot skip the monitor
            # teardown (which owns a feeder thread).
            try:
                if ledger is not None:
                    ledger.close()
            finally:
                if monitor is not None:
                    monitor.close()
        wall = time.perf_counter() - t0
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(to_ndjson(outcome.rows), encoding="utf-8")
        ok_rows = [row for row in outcome.rows if row["status"] == "ok"]
        failed_rows = [row for row in outcome.rows if row["status"] == "failed"]
        sim_total = sum(row["result"]["clock_usec"] for row in ok_rows)
        print(
            f"campaign {spec.name}: {len(outcome.rows)} cells, "
            f"jobs={args.jobs}, cache hits {outcome.cache_hits}, "
            f"misses {outcome.cache_misses}"
        )
        if outcome.resumed:
            print(f"resumed: {outcome.resumed} rows replayed from ledger")
        if outcome.fleet is not None:
            print(
                f"fleet: {outcome.fleet['retries']} retries, "
                f"{outcome.fleet['kills']} kills, "
                f"{outcome.fleet['resumes']} checkpoint resumes, "
                f"{outcome.fleet['worker_deaths']} worker deaths"
            )
        print(
            f"wrote {out_path} (simulated {sim_total / 1e6:.2f}s total, "
            f"wall {wall:.1f}s)"
        )
        if failed_rows:
            print(f"{len(failed_rows)} cells FAILED:")
            for row in failed_rows:
                where = f" [bundle: {row['bundle']}]" if row.get("bundle") else ""
                print(
                    f"  #{row['index']} {row['workload']}/{row['config']} "
                    f"seed={row['seed']}: {row['error']['type']}: "
                    f"{row['error']['message']}{where}"
                )
            return 1
        return 0

    if args.command == "analyze":
        import json as _json

        from .obs.analyze import (
            analyze_path,
            diff_reports,
            render_bundle_report,
            render_diff,
            render_report,
        )

        try:
            analyzed = [analyze_path(p) for p in args.inputs]
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.diff:
            if len(analyzed) != 2:
                print("error: --diff takes exactly two inputs", file=sys.stderr)
                return 2
            (kind_a, rep_a), (kind_b, rep_b) = analyzed
            if kind_a != "records" or kind_b != "records":
                print("error: --diff compares two record logs, not bundles",
                      file=sys.stderr)
                return 2
            diff = diff_reports(rep_a, rep_b, tolerance=args.tolerance)
            if args.json:
                print(_json.dumps(diff, indent=2, sort_keys=True))
            else:
                print(render_diff(diff, args.inputs[0], args.inputs[1]))
            return 0 if diff["within_tolerance"] else 1
        for path, (kind, report) in zip(args.inputs, analyzed):
            if args.json:
                print(_json.dumps(report, indent=2, sort_keys=True, default=str))
            elif kind == "bundle":
                print(render_bundle_report(report))
            else:
                print(render_report(report, title=f"analyze {path}"))
        return 0

    if args.command == "bench":
        import json as _json
        from pathlib import Path

        from .obs.analyze import bench_gate

        if args.report:
            try:
                with open(args.report, "r", encoding="utf-8") as fh:
                    fresh = _json.load(fh)
            except (OSError, ValueError) as exc:
                print(f"error: cannot read report: {exc}", file=sys.stderr)
                return 2
        else:
            bench_path = (
                Path(__file__).resolve().parents[2]
                / "benchmarks"
                / "bench_simperf.py"
            )
            if not bench_path.is_file():
                print(
                    f"error: {bench_path} not found (pass --report to gate "
                    "a pre-computed run)",
                    file=sys.stderr,
                )
                return 2
            import importlib.util

            spec_mod = importlib.util.spec_from_file_location(
                "bench_simperf", bench_path
            )
            module = importlib.util.module_from_spec(spec_mod)
            spec_mod.loader.exec_module(module)
            fresh = module.run_suite()
        if args.out:
            Path(args.out).parent.mkdir(parents=True, exist_ok=True)
            with open(args.out, "w", encoding="utf-8") as fh:
                _json.dump(fresh, fh, indent=2, sort_keys=True)
                fh.write("\n")
        if not args.check:
            if args.json:
                print(_json.dumps(fresh, indent=2, sort_keys=True))
            else:
                for name in sorted(fresh.get("hot_paths", {})):
                    stats = fresh["hot_paths"][name]
                    print(f"{name}: {stats['speedup']:.2f}x speedup")
                e2e = fresh.get("end_to_end", {})
                if e2e:
                    print(
                        f"end_to_end: {e2e.get('batches')} batches in "
                        f"{e2e.get('wall_sec', 0):.2f}s wall"
                    )
            return 0
        baseline_path = (
            Path(args.baseline)
            if args.baseline
            else Path(__file__).resolve().parents[2] / "BENCH_baseline.json"
        )
        try:
            with open(baseline_path, "r", encoding="utf-8") as fh:
                baseline = _json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        ok, problems = bench_gate(fresh, baseline, tolerance=args.tolerance)
        if ok:
            print(
                f"bench check OK vs {baseline_path} "
                f"(tolerance {args.tolerance:.0%})"
            )
            return 0
        print(f"bench check FAILED vs {baseline_path}:")
        for problem in problems:
            print(f"  {problem}")
        return 1

    if args.command == "run":
        for exp_id in args.experiments:
            if exp_id not in EXPERIMENTS:
                print(f"error: unknown experiment {exp_id!r}", file=sys.stderr)
                print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
                return 2
        for exp_id in args.experiments:
            t0 = time.perf_counter()
            result = run_experiment(exp_id)
            print(result.render())
            print(f"[{exp_id} completed in {time.perf_counter() - t0:.1f}s]\n")
        return 0

    if args.command == "all":
        for exp_id in EXPERIMENTS:
            t0 = time.perf_counter()
            result = run_experiment(exp_id)
            print(result.render())
            print(f"[{exp_id} completed in {time.perf_counter() - t0:.1f}s]\n")
        return 0

    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
