"""Multi-GPU coordinator: several devices over one host OS.

Model (mirroring how real multi-GPU UVM deployments behave for phase-
structured applications):

* every device runs the full single-GPU stack (its own fault buffer, µTLBs,
  driver servicing loop, VABlock residency, LRU eviction);
* host-side state is shared: one simulated clock, one host page table, one
  DMA-mapping radix tree — the components §4.4/§5.2 identify as common
  costs;
* a page is *owned* by at most one device at a time (no read-duplication
  across devices here; use the read-mostly hint for that on one device).
  When a kernel on device B is about to touch pages resident on device A,
  the coordinator migrates them before the launch — peer-to-peer over the
  interconnect when ``peer_enabled`` (PCIe P2P / NVLink), otherwise bounced
  through host memory (two copies, the pre-P2P behaviour);
* ``host_touch`` pulls pages back from whichever device owns them.

Kernels launch on one device at a time (phase-structured multi-GPU: domain
decomposition with halo exchange between phases), which keeps the shared
clock meaningful; the ``parallel_launch`` helper models concurrent
single-kernel-per-device execution by charging the makespan instead of the
sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..api import ManagedAllocation
from ..config import SystemConfig, default_config
from ..errors import AllocationError, ConfigError
from ..gpu.copy_engine import contiguous_runs
from ..gpu.warp import KernelLaunch
from ..hostos.dma import DmaMapper
from ..hostos.host_vm import HostVm
from ..obs import Observability
from ..obs.chrome_trace import PID_PEER
from ..sim.clock import SimClock
from ..sim.engine import Engine, LaunchResult
from ..sim.trace import EventTrace
from ..units import PAGE_SIZE, VABLOCK_SIZE, align_up


@dataclass
class PeerTransferStats:
    """Cross-device migration accounting."""

    peer_transfers: int = 0
    peer_pages: int = 0
    peer_usec: float = 0.0
    bounce_transfers: int = 0
    bounce_pages: int = 0
    bounce_usec: float = 0.0

    @property
    def total_pages(self) -> int:
        return self.peer_pages + self.bounce_pages


@dataclass
class DeviceHandle:
    """One device's engine plus its id."""

    device_id: int
    engine: Engine

    @property
    def driver(self):
        return self.engine.driver


class MultiGpuSystem:
    """N simulated GPUs sharing one host OS and managed address space."""

    def __init__(
        self,
        num_devices: int = 2,
        config: Optional[SystemConfig] = None,
        peer_enabled: bool = True,
        trace: bool = False,
    ) -> None:
        if num_devices < 1:
            raise ConfigError("need at least one device")
        self.config = config if config is not None else default_config()
        self.config.validate()
        self.peer_enabled = peer_enabled
        self.clock = SimClock()
        self.host_vm = HostVm()
        #: One observability layer on the shared clock; each device gets a
        #: scoped view so its trace tracks land on distinct pids.
        self.obs = Observability(self.config.obs, self.clock)
        self._m_peer_pages = self.obs.metrics.counter(
            "uvm_peer_pages_total",
            "Pages moved between devices",
            labels=("mode",),
        )
        self._m_peer_usec = self.obs.metrics.counter(
            "uvm_peer_time_usec_total",
            "Simulated time spent on cross-device migration",
            labels=("mode",),
        )
        self.devices: List[DeviceHandle] = []
        for device_id in range(num_devices):
            cfg = self.config.replace(seed=self.config.seed + device_id)
            engine = Engine(
                cfg,
                trace=EventTrace(enabled=trace),
                clock=self.clock,
                host_vm=self.host_vm,
                dma=None,  # DMA/IOMMU mapping tables are per device
                obs=self.obs.scoped(device_id * 10, f"GPU{device_id}"),
            )
            self.devices.append(DeviceHandle(device_id, engine))
        self.cost = self.devices[0].engine.cost
        #: page → owning device id (absent = host-owned or untouched).
        self._owner: Dict[int, int] = {}
        self.peer_stats = PeerTransferStats()
        self._next_page = 0
        self._allocations: List[ManagedAllocation] = []

    # ----------------------------------------------------------- allocation

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def allocations(self) -> List[ManagedAllocation]:
        return list(self._allocations)

    def managed_alloc(self, nbytes: int, name: str = "") -> ManagedAllocation:
        """One managed range visible to every device (a single VA space)."""
        if nbytes <= 0:
            raise AllocationError("allocation size must be positive")
        num_pages = align_up(nbytes, PAGE_SIZE) // PAGE_SIZE
        alloc = ManagedAllocation(
            name=name or f"alloc{len(self._allocations)}",
            start_page=self._next_page,
            num_pages=num_pages,
        )
        self._next_page += align_up(num_pages * PAGE_SIZE, VABLOCK_SIZE) // PAGE_SIZE
        self._allocations.append(alloc)
        for handle in self.devices:
            handle.driver.register_allocation(alloc.start_page, num_pages)
        return alloc

    # ---------------------------------------------------------- host phases

    def host_touch(self, alloc: ManagedAllocation, start: int = 0, stop: Optional[int] = None) -> None:
        """CPU touches pages, reclaiming them from whichever device owns
        them (cross-device CPU faulting goes through the same host VM)."""
        if stop is None:
            stop = alloc.num_pages
        pages = list(alloc.pages(start, stop))
        by_device = self._group_by_owner(pages)
        for device_id, owned in by_device.items():
            self._release_from_device(device_id, owned)
        self.host_vm.cpu_touch(pages, thread_of=lambda p: 0)
        for page in pages:
            self._owner.pop(page, None)
        self.clock.advance(self.devices[0].engine.host_cpu.touch_cost_usec(len(pages)))

    # -------------------------------------------------------------- kernels

    def launch(self, device_id: int, kernel: KernelLaunch) -> LaunchResult:
        """Run ``kernel`` on one device, first migrating any of its pages
        that another device owns (the cross-device cost this module adds)."""
        handle = self.devices[device_id]
        touched = kernel.touched_pages
        foreign = self._group_by_owner(touched, exclude=device_id)
        for src_id, pages in foreign.items():
            self._migrate_between(src_id, device_id, sorted(pages))
        result = handle.engine.launch(kernel)
        for page in touched:
            if handle.engine.device.page_table.is_resident(page):
                self._owner[page] = device_id
        return result

    def parallel_launch(self, launches: Sequence) -> List[LaunchResult]:
        """Launch ``(device_id, kernel)`` pairs "concurrently": each runs on
        its own device; the shared clock advances by the makespan (devices
        overlap) rather than the sum."""
        start = self.clock.now
        results = []
        end_times = []
        for device_id, kernel in launches:
            # Rewind-free concurrency: run each launch from the common start
            # by tracking only its duration, then set the clock to the max.
            before = self.clock.now
            result = self.launch(device_id, kernel)
            end_times.append(self.clock.now)
            # Model overlap: reset to start for the next device's run.
            self.clock._now = start  # noqa: SLF001 - coordinated rewind
            results.append(result)
        self.clock.advance_to(max(end_times) if end_times else start)
        return results

    # ------------------------------------------------------------ internals

    def _group_by_owner(self, pages: Iterable[int], exclude: Optional[int] = None) -> Dict[int, Set[int]]:
        grouped: Dict[int, Set[int]] = {}
        for page in pages:
            owner = self._owner.get(page)
            if owner is None or owner == exclude:
                continue
            grouped.setdefault(owner, set()).add(page)
        return grouped

    def _release_from_device(self, device_id: int, pages: Set[int]) -> None:
        """Migrate device-resident pages back to host memory."""
        engine = self.devices[device_id].engine
        resident = sorted(
            p for p in pages if engine.device.page_table.is_resident(p)
        )
        if not resident:
            return
        self.clock.advance(engine._d2h_with_retry(contiguous_runs(resident)))
        engine.device.page_table.unmap_pages(resident)
        for page in resident:
            block = engine.driver.vablocks.get_for_page(page)
            block.resident_pages.discard(page)
        self.host_vm.mark_valid(resident)

    def _migrate_between(self, src_id: int, dst_id: int, pages: List[int]) -> None:
        """Move page ownership src→dst.

        Peer-enabled: one direct device-to-device copy over the peer link,
        installed straight into the destination's residency.  Otherwise:
        bounce through host memory — a D2H copy on the source link plus the
        destination's bulk page-in (two traversals of the interconnect, the
        pre-P2P behaviour).
        """
        src = self.devices[src_id].engine
        dst = self.devices[dst_id]
        resident = sorted(p for p in pages if src.device.page_table.is_resident(p))
        if not resident:
            for page in pages:
                self._owner.pop(page, None)
            return
        runs = contiguous_runs(resident)
        nbytes = len(resident) * PAGE_SIZE

        # Release the source side (page tables, block residency).
        src.device.page_table.unmap_pages(resident)
        for page in resident:
            block = src.driver.vablocks.get_for_page(page)
            block.resident_pages.discard(page)
        self.host_vm.mark_valid(resident)

        t_migrate = self.clock.now
        if self.peer_enabled:
            # Direct D2D: charge the peer wire time, then install on the
            # destination with the host→device transfer replaced by it (the
            # destination's bulk path would otherwise re-copy from host).
            t0 = self.clock.now
            record = dst.driver.bulk_migrate(resident)
            install = self.clock.now - t0
            peer_wire = (
                self.cost.peer_latency_usec * max(1, len(runs))
                + nbytes / self.cost.peer_bandwidth_bytes_per_usec
            )
            # Swap wire costs: remove the H2D time the bulk path charged,
            # add the peer link's.
            delta = peer_wire - record.time_transfer_h2d
            if delta > 0:
                self.clock.advance(delta)
            mode = "peer"
            self.peer_stats.peer_transfers += len(runs)
            self.peer_stats.peer_pages += len(resident)
            self.peer_stats.peer_usec += install + max(0.0, delta)
        else:
            # Bounce: D2H on the source link, then the destination's bulk
            # page-in (its own H2D copy).
            usec = src._d2h_with_retry(runs)
            self.clock.advance(usec)
            t0 = self.clock.now
            dst.driver.bulk_migrate(resident)
            mode = "bounce"
            self.peer_stats.bounce_transfers += len(runs)
            self.peer_stats.bounce_pages += len(resident)
            self.peer_stats.bounce_usec += usec + (self.clock.now - t0)
        self._m_peer_pages.labels(mode).inc(len(resident))
        self._m_peer_usec.labels(mode).inc(self.clock.now - t_migrate)
        if self.obs.chrome.enabled:
            self.obs.chrome.duration(
                f"migrate GPU{src_id}→GPU{dst_id} ({mode})",
                "peer",
                ts=t_migrate,
                dur=self.clock.now - t_migrate,
                pid=PID_PEER,
                tid=0,
                args={"pages": len(resident), "bytes": nbytes, "mode": mode},
            )
        for page in resident:
            self._owner[page] = dst_id

    # ------------------------------------------------------------ reporting

    def total_records(self) -> List:
        """All devices' batch records, ordered by service start time."""
        records = []
        for handle in self.devices:
            records.extend(handle.driver.log.records)
        return sorted(records, key=lambda r: r.t_start)

    def metrics_snapshot(self) -> dict:
        """Merged metrics across every device (they share one registry)."""
        return self.obs.metrics.snapshot()

    def export_chrome_trace(self, path):
        """Write the combined multi-device Chrome trace JSON to ``path``."""
        return self.obs.chrome.write(path)
