"""Multi-GPU extension: the paper's stated future direction.

"While this work focuses on single GPUs, it serves as a base and foundation
for studying the interactions among multiple devices on the same systems,
which are the standard building blocks of computer clusters." (paper §1)

:class:`MultiGpuSystem` instantiates one fault-servicing engine per device,
all sharing the host-side state a real UVM deployment shares — one clock,
one host VM, one DMA-mapping table — and adds the cross-device mechanism
single-GPU UVM lacks: page *ownership* migration between devices, either
peer-to-peer over the interconnect or bounced through host memory.
"""

from .system import DeviceHandle, MultiGpuSystem, PeerTransferStats

__all__ = ["MultiGpuSystem", "DeviceHandle", "PeerTransferStats"]
