"""Size/time units and address arithmetic used throughout the simulator.

The UVM driver operates at three granularities (paper §2.2):

* 4 KiB *OS pages* — the unit of fault generation and migration tracking on
  x86 hosts.
* 64 KiB *upgrade regions* — pages are upgraded from 4 KiB to 64 KiB within
  the UVM runtime as a component of prefetching (emulating the Power9 page
  size).
* 2 MiB *Virtual Address Blocks (VABlocks)* — the logical unit of driver
  processing, DMA-mapping bursts, CPU unmapping, and eviction.

All byte addresses in the simulator are plain Python ints into a single flat
managed virtual address space.  Helper functions here convert between byte
addresses, page ids, region ids, and VABlock ids; they are intentionally tiny
so hot paths can inline the shifts directly where profiling warrants it.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: x86 host OS page size adopted by UVM for migration and tracking.
PAGE_SIZE = 4 * KB
PAGE_SHIFT = 12

#: 64 KiB internal upgrade-region size (16 OS pages).
REGION_SIZE = 64 * KB
REGION_SHIFT = 16
PAGES_PER_REGION = REGION_SIZE // PAGE_SIZE  # 16

#: 2 MiB VABlock size (512 OS pages, 32 regions).
VABLOCK_SIZE = 2 * MB
VABLOCK_SHIFT = 21
PAGES_PER_VABLOCK = VABLOCK_SIZE // PAGE_SIZE  # 512
REGIONS_PER_VABLOCK = VABLOCK_SIZE // REGION_SIZE  # 32

#: Simulated time is kept in microseconds (float).
USEC = 1.0
MSEC = 1e3
SEC = 1e6


def page_of(addr: int) -> int:
    """Page id containing byte address ``addr``."""
    return addr >> PAGE_SHIFT


def page_base(page: int) -> int:
    """First byte address of page ``page``."""
    return page << PAGE_SHIFT


def region_of_page(page: int) -> int:
    """64 KiB upgrade-region id containing ``page``."""
    return page >> (REGION_SHIFT - PAGE_SHIFT)


def vablock_of(addr: int) -> int:
    """VABlock id containing byte address ``addr``."""
    return addr >> VABLOCK_SHIFT


def vablock_of_page(page: int) -> int:
    """VABlock id containing page ``page``."""
    return page >> (VABLOCK_SHIFT - PAGE_SHIFT)


def page_index_in_vablock(page: int) -> int:
    """Offset of ``page`` within its VABlock, in [0, PAGES_PER_VABLOCK)."""
    return page & (PAGES_PER_VABLOCK - 1)


def first_page_of_vablock(vablock: int) -> int:
    """Global page id of the first page in VABlock ``vablock``."""
    return vablock << (VABLOCK_SHIFT - PAGE_SHIFT)


def pages_spanned(addr: int, nbytes: int) -> range:
    """Range of page ids touched by ``nbytes`` starting at ``addr``."""
    if nbytes <= 0:
        return range(0)
    first = page_of(addr)
    last = page_of(addr + nbytes - 1)
    return range(first, last + 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    return value - (value % alignment)


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count, e.g. ``fmt_bytes(3 * MB) == '3.0MB'``."""
    nbytes = float(nbytes)
    for unit, name in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(nbytes) >= unit:
            return f"{nbytes / unit:.1f}{name}"
    return f"{nbytes:.0f}B"


def fmt_usec(usec: float) -> str:
    """Human-readable duration from microseconds."""
    if abs(usec) >= SEC:
        return f"{usec / SEC:.3f}s"
    if abs(usec) >= MSEC:
        return f"{usec / MSEC:.3f}ms"
    return f"{usec:.2f}us"
