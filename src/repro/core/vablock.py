"""VABlock state: the driver's 2 MiB logical processing unit.

"The driver splits all memory allocations into 2MB logical Virtual Address
Blocks (VABlocks).  These VABlocks serve as logical boundaries; the driver
processes all batch faults within a single VABlock together, and each
VABlock within a batch requires a distinct processing step. ... If eviction
is required, UVM evicts allocations at the VABlock granularity." (paper §2.2)

Each :class:`VABlockState` tracks exactly the per-block facts the paper's
cost analysis turns on:

* ``gpu_chunk`` — the 2 MiB physical chunk backing the block (None when not
  device-resident; set on first fault, cleared by eviction).
* ``resident_pages`` — pages currently mapped on the GPU.
* ``dma_initialized`` — whether the compulsory first-access DMA-state burst
  (per-page mappings + radix-tree inserts, §5.2) has been paid.
* ``evict_count`` — how many times the block has been evicted (Fig 12/13
  stratify batches by this).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import AllocationError
from ..units import (
    PAGES_PER_VABLOCK,
    first_page_of_vablock,
    vablock_of_page,
)


class VABlockPhase(enum.Enum):
    """Observable lifecycle phase of a VABlock (paper §2.2/§5.1).

    The phase is *derived* from block state rather than stored, so it can
    never drift from the fields it summarizes:

    * ``REGISTERED`` — known to the driver, no physical chunk, no resident
      pages (fresh allocations, and blocks after eviction);
    * ``ALLOCATED`` — holds a 2 MiB device chunk but no pages are mapped
      yet (mid-service, or after the CPU pulled every page back);
    * ``RESIDENT`` — holds a chunk with one or more GPU-mapped pages.
    """

    REGISTERED = "registered"
    ALLOCATED = "allocated"
    RESIDENT = "resident"


#: Legal phase transitions for the sanitizer's state-machine check.
#: Self-transitions are always legal (no observable change).  The one
#: forbidden edge the fault path must never produce is
#: REGISTERED → RESIDENT: pages can only become resident through a block
#: that first obtained a physical chunk (§5.1 fail-allocation ordering).
LEGAL_PHASE_TRANSITIONS: FrozenSet[Tuple[VABlockPhase, VABlockPhase]] = frozenset(
    {
        (VABlockPhase.REGISTERED, VABlockPhase.ALLOCATED),   # chunk granted
        (VABlockPhase.ALLOCATED, VABlockPhase.RESIDENT),     # pages mapped
        (VABlockPhase.ALLOCATED, VABlockPhase.REGISTERED),   # evicted empty
        (VABlockPhase.RESIDENT, VABlockPhase.REGISTERED),    # evicted
        (VABlockPhase.RESIDENT, VABlockPhase.ALLOCATED),     # CPU pulled all pages back
    }
)


def legal_transition(old: VABlockPhase, new: VABlockPhase) -> bool:
    """True when ``old → new`` is a legal VABlock phase transition."""
    return old == new or (old, new) in LEGAL_PHASE_TRANSITIONS


@dataclass
class VABlockState:
    """Driver-side state for one 2 MiB VABlock."""

    block_id: int  # dim: vablock
    #: Global page ids belonging to a managed allocation within this block
    #: (a tail block may be partial).
    valid_pages: Set[int]  # dim: [page]
    #: Physical chunk id on the device, or None.
    gpu_chunk: Optional[int] = None  # dim: chunk
    #: Pages currently GPU-resident.
    resident_pages: Set[int] = field(default_factory=set)  # dim: [page]
    #: Compulsory DMA/radix state created (once per block lifetime).
    dma_initialized: bool = False
    #: Number of times this block has been evicted.
    evict_count: int = 0
    #: Monotonic allocation stamp (LRU ordering uses GPU-allocation order).
    alloc_stamp: int = -1
    #: cudaMemAdviseSetReadMostly: migrations *duplicate* instead of moving —
    #: host mappings stay intact and host copies stay valid; a GPU write
    #: collapses the duplication (costing the deferred unmap).
    read_mostly: bool = False
    #: Pages direct-mapped to the device (cudaMemAdviseSetAccessedBy):
    #: accessed remotely over the interconnect, never faulted or migrated.
    remote_pages: Set[int] = field(default_factory=set)

    @property
    def first_page(self) -> int:
        return first_page_of_vablock(self.block_id)

    @property
    def num_valid_pages(self) -> int:
        return len(self.valid_pages)

    @property
    def is_gpu_allocated(self) -> bool:
        return self.gpu_chunk is not None

    @property
    def phase(self) -> VABlockPhase:
        """Current :class:`VABlockPhase`, derived from chunk + residency."""
        if self.gpu_chunk is None:
            return VABlockPhase.REGISTERED
        if self.resident_pages:
            return VABlockPhase.RESIDENT
        return VABlockPhase.ALLOCATED

    def page_offset(self, page: int) -> int:
        return page - self.first_page


class VABlockManager:
    """Registry of VABlocks for all managed allocations."""

    def __init__(self) -> None:
        self._blocks: Dict[int, VABlockState] = {}
        self._stamp = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks

    def register_allocation(self, start_page: int, num_pages: int) -> List[VABlockState]:
        """Register a managed allocation's pages, creating block states.

        Allocations are VABlock-aligned (the API's address-space allocator
        guarantees this), so a block never spans two allocations.
        """
        if num_pages <= 0:
            raise AllocationError("allocation must contain at least one page")
        created: List[VABlockState] = []
        end_page = start_page + num_pages
        page = start_page
        while page < end_page:
            block_id = vablock_of_page(page)
            block_first = first_page_of_vablock(block_id)
            block_end = block_first + PAGES_PER_VABLOCK
            span_end = min(end_page, block_end)
            pages = set(range(page, span_end))
            state = self._blocks.get(block_id)
            if state is None:
                state = VABlockState(block_id=block_id, valid_pages=pages)
                self._blocks[block_id] = state
                created.append(state)
            else:
                state.valid_pages |= pages
            page = span_end
        return created

    def get(self, block_id: int) -> VABlockState:
        return self._blocks[block_id]

    def get_for_page(self, page: int) -> VABlockState:
        return self._blocks[vablock_of_page(page)]

    def blocks(self) -> Iterable[VABlockState]:
        return self._blocks.values()

    def gpu_resident_blocks(self) -> List[VABlockState]:
        return [b for b in self._blocks.values() if b.is_gpu_allocated]

    def next_stamp(self) -> int:
        """Monotonic stamp for GPU-allocation ordering (LRU)."""
        self._stamp += 1
        return self._stamp

    def total_resident_pages(self) -> int:
        return sum(len(b.resident_pages) for b in self._blocks.values())
