"""Fault-batch assembly and duplicate classification.

The driver "groups outstanding faults into batches in the host-side cache"
(§2.2) and classifies duplicate faults into two types (§4.2):

* **type 1** — faults to the same address from the *same* µTLB (spatial
  locality within a warp/block, or spurious SM wakeups);
* **type 2** — faults to the same address from *different* µTLBs (data
  sharing among blocks on different SMs).

Both are counted here per batch; unique faults are grouped by VABlock since
"the driver processes all batch faults within a single VABlock together"
(§2.2), preserving first-fault order within each block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Union

import numpy as np

from ..gpu.fault import AccessType, Fault, FaultArrays
from ..units import PAGE_SHIFT, VABLOCK_SHIFT, vablock_of_page

#: Right-shift turning a page id into its VABlock id (array form of
#: :func:`repro.units.vablock_of_page`).
_VABLOCK_PAGE_SHIFT = VABLOCK_SHIFT - PAGE_SHIFT


@dataclass
class BlockWork:
    """Unique faulted pages of one VABlock within a batch."""

    block_id: int
    #: Unique faulted pages in first-arrival order.
    pages: List[int] = field(default_factory=list)
    #: Pages with at least one WRITE fault (take GPU write ownership).
    write_pages: Set[int] = field(default_factory=set)
    #: Pages demanded only by PREFETCH instructions.
    prefetch_only_pages: Set[int] = field(default_factory=set)
    #: Raw fault count attributed to this block (including duplicates).
    raw_faults: int = 0
    #: True for hint-driven bulk migrations (cudaMemPrefetchAsync): no
    #: per-fault servicing cost, no reactive prefetch expansion.
    hinted: bool = False


@dataclass
class AssembledBatch:
    """A preprocessed fault batch ready for servicing."""

    #: Raw faults in arrival order, as fetched from the buffer — a list of
    #: :class:`Fault` objects (scalar path) or a :class:`FaultArrays`
    #: (SoA path); both index/iterate to rows with the same field names.
    faults: Union[List[Fault], FaultArrays]
    #: Per-VABlock work items, in first-fault order.
    blocks: List[BlockWork]
    num_unique: int = 0
    dup_same_utlb: int = 0
    dup_cross_utlb: int = 0
    #: Faults per originating SM (length = num_sms), for Table 2.
    sm_fault_counts: np.ndarray = None

    @property
    def num_raw(self) -> int:
        return len(self.faults)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def arrival_window(self) -> float:
        """Time between first and last fault arrival in the batch (Fig 4)."""
        if not self.faults:
            return 0.0
        return self.faults[-1].timestamp - self.faults[0].timestamp


def assemble_batch(  # parity: batch-assembly/scalar
    faults: Union[Sequence[Fault], FaultArrays], num_sms: int
) -> AssembledBatch:
    """Preprocess fetched faults: dedup, classify, group by VABlock.

    Duplicate semantics follow §4.2: the first fault to a page is unique;
    later faults to the same page are type 1 when some earlier fault to that
    page came from the same µTLB, else type 2.  A page's access type is the
    strongest seen (WRITE > READ > PREFETCH) — a write fault anywhere makes
    the page a write target.

    A :class:`FaultArrays` input dispatches to the vectorized SoA assembler
    (:func:`assemble_batch_soa`), which produces byte-identical
    :class:`BlockWork`/:class:`AssembledBatch` contents.
    """
    if isinstance(faults, FaultArrays):
        return assemble_batch_soa(faults, num_sms)
    batch = AssembledBatch(faults=list(faults), blocks=[])
    sm_counts = np.zeros(num_sms, dtype=np.int32)
    block_index: Dict[int, BlockWork] = {}
    seen_utlbs: Dict[int, Set[int]] = {}
    page_demand: Dict[int, AccessType] = {}

    for fault in faults:
        sm_counts[fault.sm_id] += 1
        page = fault.page
        block_id = vablock_of_page(page)
        work = block_index.get(block_id)
        if work is None:
            work = BlockWork(block_id=block_id)
            block_index[block_id] = work
            batch.blocks.append(work)
        work.raw_faults += 1

        utlbs = seen_utlbs.get(page)
        if utlbs is None:
            # First fault for this page in the batch: unique.
            seen_utlbs[page] = {fault.utlb_id}
            page_demand[page] = fault.access
            batch.num_unique += 1
            work.pages.append(page)
            if fault.access == AccessType.WRITE:
                work.write_pages.add(page)
            elif fault.access == AccessType.PREFETCH:
                work.prefetch_only_pages.add(page)
        else:
            if fault.utlb_id in utlbs:
                batch.dup_same_utlb += 1
            else:
                batch.dup_cross_utlb += 1
                utlbs.add(fault.utlb_id)
            # Upgrade access strength for the page.
            if fault.access == AccessType.WRITE:
                work.write_pages.add(page)
                work.prefetch_only_pages.discard(page)
            elif fault.access == AccessType.READ:
                work.prefetch_only_pages.discard(page)

    batch.sm_fault_counts = sm_counts
    return batch


def assemble_batch_soa(  # parity: batch-assembly/soa
    faults: FaultArrays, num_sms: int
) -> AssembledBatch:
    """Vectorized :func:`assemble_batch` over parallel fault columns.

    The scalar loop's dict-of-sets bookkeeping becomes mask algebra:

    * *unique* faults are first occurrences of a page: run heads of the
      page-sorted column, with each page's earliest arrival recovered by
      ``np.minimum.reduceat`` over the (unstable, faster) argsort;
    * §4.2 type-1 vs type-2 duplicates fall out of first occurrences of the
      ``(page, µTLB)`` pair — a duplicate whose pair is fresh crossed µTLBs
      (type 2), a repeated pair stayed within one (type 1);
    * the strongest-access upgrade (WRITE > READ > PREFETCH) is a pair of
      boolean scatters (any WRITE → write page; any demand → not
      prefetch-only);
    * per-VABlock grouping falls out of the sorted unique pages (block run
      heads need no second sort), blocks order by earliest contained
      arrival, and the final replay-target ordering is one quicksort of a
      fused ``block_rank * n + first_arrival`` key — unique keys make the
      unstable sort order-deterministic.

    Output is byte-identical to the scalar path (property-tested): plain
    Python ints everywhere (``tolist()``), same block order (first fault
    arrival), same intra-block page order, same counters.
    """
    n = len(faults)
    if n == 0:
        return AssembledBatch(
            faults=faults,
            blocks=[],
            sm_fault_counts=np.zeros(num_sms, dtype=np.int32),
        )

    pages = faults.pages_array()  # dim: [page]
    accesses = faults.accesses_array()
    utlb_ids = faults.utlb_ids_array()
    sm_counts = np.bincount(faults.sm_ids_array(), minlength=num_sms).astype(
        np.int32
    )

    # One sort yields the whole page dedup: first occurrences are the run
    # heads of the sorted column.  The sort need not be stable — each page's
    # earliest arrival is recovered as the minimum argsort index per run,
    # and the page-rank scatter below is order-insensitive within a run.
    order = np.argsort(pages)
    sorted_pages = pages[order]  # dim: [page]
    is_first = np.empty(n, dtype=bool)
    is_first[0] = True
    np.not_equal(sorted_pages[1:], sorted_pages[:-1], out=is_first[1:])
    run_starts = np.nonzero(is_first)[0]
    uniq_pages = sorted_pages[run_starts]  # dim: [page]
    first_idx = np.minimum.reduceat(order, run_starts)
    inv = np.empty(n, dtype=np.int64)
    inv[order] = np.cumsum(is_first) - 1
    num_unique = int(uniq_pages.size)

    # §4.2 duplicate classification via (page, µTLB) pair dedup: a duplicate
    # whose pair is fresh crossed µTLBs (type 2), a repeated pair stayed
    # within one (type 1).
    pair_keys = np.sort(inv * (int(utlb_ids.max()) + 1) + utlb_ids)
    num_pairs = 1 + int(np.count_nonzero(pair_keys[1:] != pair_keys[:-1]))
    dup_same = n - num_pairs
    dup_cross = num_pairs - num_unique

    # Strongest access per unique page (WRITE > READ > PREFETCH) as two
    # boolean scatters: a page is a write target iff any WRITE hit it, and
    # prefetch-only iff no demand (READ/WRITE) access ever did.
    page_written = np.zeros(num_unique, dtype=bool)
    page_written[inv[accesses == AccessType.WRITE]] = True
    page_demanded = np.zeros(num_unique, dtype=bool)
    page_demanded[inv[accesses != AccessType.PREFETCH]] = True

    # Group by VABlock.  ``uniq_pages`` is sorted, so its block column is
    # too: block membership is just run heads — no second sort.  Blocks
    # order by their earliest contained fault arrival, and pages group into
    # (block_rank, first_arrival) order via one quicksort of a fused key
    # (both components < n, so keys are unique and the unstable sort is
    # order-deterministic).
    page_blocks = uniq_pages >> _VABLOCK_PAGE_SHIFT
    is_first_blk = np.empty(num_unique, dtype=bool)
    is_first_blk[0] = True
    np.not_equal(page_blocks[1:], page_blocks[:-1], out=is_first_blk[1:])
    blk_starts = np.nonzero(is_first_blk)[0]
    uniq_blocks = page_blocks[blk_starts]
    num_blocks = int(uniq_blocks.size)
    blk_inv = np.cumsum(is_first_blk) - 1
    block_arrival = np.minimum.reduceat(first_idx, blk_starts)
    block_order = np.argsort(block_arrival)  # unique values: quicksort ok
    block_rank = np.empty(num_blocks, dtype=np.int64)
    block_rank[block_order] = np.arange(num_blocks)
    perm = np.argsort(block_rank[blk_inv] * n + first_idx)
    grouped_pages = uniq_pages[perm]  # dim: [page]
    grouped_written = page_written[perm]
    grouped_prefetch_only = ~page_demanded[perm]
    blk_ends = np.empty(num_blocks, dtype=np.int64)
    blk_ends[:-1] = blk_starts[1:]
    blk_ends[-1] = num_unique
    run_bounds = np.concatenate(([0], np.cumsum((blk_ends - blk_starts)[block_order])))

    # Raw (duplicate-inclusive) fault count per block: every fault's block
    # slot is its unique-page slot's block slot — two fancy-index hops, no
    # binary search.
    raw_counts = np.bincount(blk_inv[inv], minlength=num_blocks)

    ordered_block_ids = uniq_blocks[block_order].tolist()
    ordered_raw = raw_counts[block_order].tolist()
    blocks: List[BlockWork] = []
    for r, block_id in enumerate(ordered_block_ids):
        lo, hi = run_bounds[r], run_bounds[r + 1]
        run_pages = grouped_pages[lo:hi]
        blocks.append(
            BlockWork(
                block_id=block_id,
                pages=run_pages.tolist(),
                write_pages=set(run_pages[grouped_written[lo:hi]].tolist()),
                prefetch_only_pages=set(
                    run_pages[grouped_prefetch_only[lo:hi]].tolist()
                ),
                raw_faults=ordered_raw[r],
            )
        )

    return AssembledBatch(
        faults=faults,
        blocks=blocks,
        num_unique=num_unique,
        dup_same_utlb=dup_same,
        dup_cross_utlb=dup_cross,
        sm_fault_counts=sm_counts,
    )
