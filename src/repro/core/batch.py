"""Fault-batch assembly and duplicate classification.

The driver "groups outstanding faults into batches in the host-side cache"
(§2.2) and classifies duplicate faults into two types (§4.2):

* **type 1** — faults to the same address from the *same* µTLB (spatial
  locality within a warp/block, or spurious SM wakeups);
* **type 2** — faults to the same address from *different* µTLBs (data
  sharing among blocks on different SMs).

Both are counted here per batch; unique faults are grouped by VABlock since
"the driver processes all batch faults within a single VABlock together"
(§2.2), preserving first-fault order within each block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

import numpy as np

from ..gpu.fault import AccessType, Fault
from ..units import vablock_of_page


@dataclass
class BlockWork:
    """Unique faulted pages of one VABlock within a batch."""

    block_id: int
    #: Unique faulted pages in first-arrival order.
    pages: List[int] = field(default_factory=list)
    #: Pages with at least one WRITE fault (take GPU write ownership).
    write_pages: Set[int] = field(default_factory=set)
    #: Pages demanded only by PREFETCH instructions.
    prefetch_only_pages: Set[int] = field(default_factory=set)
    #: Raw fault count attributed to this block (including duplicates).
    raw_faults: int = 0
    #: True for hint-driven bulk migrations (cudaMemPrefetchAsync): no
    #: per-fault servicing cost, no reactive prefetch expansion.
    hinted: bool = False


@dataclass
class AssembledBatch:
    """A preprocessed fault batch ready for servicing."""

    #: Raw faults in arrival order, as fetched from the buffer.
    faults: List[Fault]
    #: Per-VABlock work items, in first-fault order.
    blocks: List[BlockWork]
    num_unique: int = 0
    dup_same_utlb: int = 0
    dup_cross_utlb: int = 0
    #: Faults per originating SM (length = num_sms), for Table 2.
    sm_fault_counts: np.ndarray = None

    @property
    def num_raw(self) -> int:
        return len(self.faults)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def arrival_window(self) -> float:
        """Time between first and last fault arrival in the batch (Fig 4)."""
        if not self.faults:
            return 0.0
        return self.faults[-1].timestamp - self.faults[0].timestamp


def assemble_batch(faults: Sequence[Fault], num_sms: int) -> AssembledBatch:
    """Preprocess fetched faults: dedup, classify, group by VABlock.

    Duplicate semantics follow §4.2: the first fault to a page is unique;
    later faults to the same page are type 1 when some earlier fault to that
    page came from the same µTLB, else type 2.  A page's access type is the
    strongest seen (WRITE > READ > PREFETCH) — a write fault anywhere makes
    the page a write target.
    """
    batch = AssembledBatch(faults=list(faults), blocks=[])
    sm_counts = np.zeros(num_sms, dtype=np.int32)
    block_index: Dict[int, BlockWork] = {}
    seen_utlbs: Dict[int, Set[int]] = {}
    page_demand: Dict[int, AccessType] = {}

    for fault in faults:
        sm_counts[fault.sm_id] += 1
        page = fault.page
        block_id = vablock_of_page(page)
        work = block_index.get(block_id)
        if work is None:
            work = BlockWork(block_id=block_id)
            block_index[block_id] = work
            batch.blocks.append(work)
        work.raw_faults += 1

        utlbs = seen_utlbs.get(page)
        if utlbs is None:
            # First fault for this page in the batch: unique.
            seen_utlbs[page] = {fault.utlb_id}
            page_demand[page] = fault.access
            batch.num_unique += 1
            work.pages.append(page)
            if fault.access == AccessType.WRITE:
                work.write_pages.add(page)
            elif fault.access == AccessType.PREFETCH:
                work.prefetch_only_pages.add(page)
        else:
            if fault.utlb_id in utlbs:
                batch.dup_same_utlb += 1
            else:
                batch.dup_cross_utlb += 1
                utlbs.add(fault.utlb_id)
            # Upgrade access strength for the page.
            if fault.access == AccessType.WRITE:
                work.write_pages.add(page)
                work.prefetch_only_pages.discard(page)
            elif fault.access == AccessType.READ:
                work.prefetch_only_pages.discard(page)

    batch.sm_fault_counts = sm_counts
    return batch
