"""The UVM driver model: fault fetch, batch servicing, replay.

This is the system under study.  One call to :meth:`UvmDriver.service_next_batch`
performs the full fault-handling path of paper §2.2/§4/§5 and emits one
:class:`~repro.core.batch_record.BatchRecord`:

1. (wake) worker-thread wakeup if it was sleeping;
2. fetch up to ``batch_size`` faults from the GPU fault buffer;
3. preprocess: sort/group by VABlock, classify duplicates (§4.2);
4. per VABlock, in first-fault order (§2.2 "each VABlock within a batch
   requires a distinct processing step"):

   a. ensure the block has a physical chunk, evicting LRU victims at
      VABlock granularity when device memory is full (§5.1);
   b. compulsory first-access DMA-state creation: per-page DMA mappings
      plus reverse mappings in the kernel radix tree (§5.2);
   c. reactive tree/density prefetch expansion within the block (§5.2);
   d. ``unmap_mapping_range()`` when the block is partially CPU-resident
      (§4.4) — paid at most once per block unless the CPU re-touches,
      which produces the cost "levels" of Fig 13;
   e. page population (zero-fill) for pages without source data and for
      restarted migrations after eviction (§5.1);
   f. host→device copy of valid pages via the copy engines;
   g. GPU page-table update;

5. replay: flush the fault buffer — dropping every un-fetched fault, which
   the µTLBs will reissue if still needed — and push the replay (§2.1).

Ablations from §6 are built in behind ``DriverConfig`` flags: per-VABlock
service parallelism, asynchronous unmapping, duplicate-adaptive batch
sizing, and enlarged prefetch scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..config import SystemConfig
from ..errors import (
    DmaMapFault,
    InvalidAccess,
    OutOfDeviceMemory,
    RetryExhausted,
    TransferFault,
    TransferStuck,
    UvmError,
)
from ..units import REGIONS_PER_VABLOCK, vablock_of_page
from ..gpu.copy_engine import contiguous_runs
from ..gpu.device import GpuDevice
from ..gpu.fault import Fault, FaultArrays
from ..hostos.cost_model import CostModel
from ..hostos.dma import DmaMapper
from ..hostos.host_vm import HostVm
from ..obs import Observability
from ..obs.chrome_trace import (
    PID_DRIVER,
    PID_EVICTION,
    PID_SM,
    TID_BATCH,
    TID_PHASE,
    TID_VABLOCK,
)
from ..check.sanitizer import NULL_SANITIZER
from ..obs.metrics import DEFAULT_COUNT_BUCKETS
from ..obs.spans import NULL_SPAN
from ..sim.clock import SimClock
from ..sim.trace import EventTrace
from .batch import AssembledBatch, BlockWork, assemble_batch
from .batch_record import BatchRecord
from .eviction import LruEvictionPolicy, make_eviction_policy
from .instrumentation import BatchLog
from .prefetch import DensityPrefetcher, make_prefetcher
from .vablock import VABlockManager, VABlockState


class RetryPolicy:
    """Bounded sim-time exponential backoff for transient fault-path failures.

    Attempt ``n``'s backoff is ``min(base * factor**(n-1), max)``; a burst
    that hangs is charged the per-phase ``deadline_usec`` instead and failed
    over.  ``fail_fast`` (DriverConfig ``failure_mode="fail-fast"``) raises
    :class:`repro.errors.RetryExhausted` when the budget runs out;
    the default degrade mode falls back (defer the VABlock, drop the
    prefetch, skip the speculative neighbour) so the workload still
    completes.
    """

    __slots__ = (
        "max_attempts",
        "base_usec",
        "factor",
        "max_usec",
        "deadline_usec",
        "fail_fast",
    )

    def __init__(self, driver_config) -> None:
        self.max_attempts = driver_config.retry_max_attempts
        self.base_usec = driver_config.retry_backoff_base_usec
        self.factor = driver_config.retry_backoff_factor
        self.max_usec = driver_config.retry_backoff_max_usec
        self.deadline_usec = driver_config.phase_deadline_usec
        self.fail_fast = driver_config.failure_mode == "fail-fast"

    def backoff_usec(self, attempt: int) -> float:
        """Backoff to wait after failed attempt number ``attempt`` (1-based)."""
        return min(self.base_usec * self.factor ** (attempt - 1), self.max_usec)


@dataclass
class ServiceOutcome:
    """What one batch service did, for the engine to apply to the GPU."""

    record: BatchRecord
    #: Pages made (and still) resident — warps waiting on them unblock.
    serviced_pages: List[int] = field(default_factory=list)
    #: Fetched faults whose page is *not* resident at batch end (evicted
    #: within the same batch); their warps must re-demand.  Scalar path:
    #: :class:`Fault` objects; SoA path: :class:`FaultRow` views — the
    #: engine's re-demand reads the same field names from either.
    unserviced_faults: List[Fault] = field(default_factory=list)
    #: Faults dropped by the pre-replay flush; reissued if still needed
    #: (``List[Fault]`` or a :class:`FaultArrays` under ``REPRO_SOA``).
    dropped_faults: List[Fault] = field(default_factory=list)
    #: Pages evicted from the device during this batch.
    evicted_pages: List[int] = field(default_factory=list)


class UvmDriver:
    """Host-resident fault servicing engine and managed-memory manager."""

    def __init__(
        self,
        config: SystemConfig,
        device: GpuDevice,
        clock: SimClock,
        host_vm: HostVm,
        dma: DmaMapper,
        cost_model: CostModel,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[EventTrace] = None,
        obs: Optional[Observability] = None,
        sanitizer=None,
        injector=None,
    ) -> None:
        config.validate()
        self.config = config
        self.device = device
        self.clock = clock
        self.host_vm = host_vm
        self.dma = dma
        self.cost = cost_model
        self.rng = rng
        self.trace = trace
        self.obs = obs if obs is not None else Observability(config.obs, clock)
        #: UVMSan invariant checker (no-op null object unless enabled).
        self.san = sanitizer if sanitizer is not None else NULL_SANITIZER
        #: Fault injector (no-op null object unless chaos testing is on).
        if injector is None:
            from ..inject import NULL_INJECTOR

            injector = NULL_INJECTOR
        self.inj = injector
        #: Retry/timeout/backoff policy for transient fault-path failures.
        self.retry = RetryPolicy(config.driver)
        #: Copy engine currently carrying driver transfers (failover target
        #: flips this to the sibling after a stuck burst).
        self._active_ce_id = 0
        self.vablocks = VABlockManager()
        self.prefetcher = make_prefetcher(
            config.driver.prefetch_policy,
            threshold=config.driver.prefetch_threshold,
            scope_blocks=config.driver.prefetch_scope_blocks,
        )
        self.eviction = make_eviction_policy(config.driver.eviction_policy)
        self.log = BatchLog()
        self._batch_id = 0
        self._current_batch_size = config.driver.batch_size
        #: Unmap work deferred off the fault path (async-unmap ablation).
        self.async_unmap_backlog_usec = 0.0
        # Observability: cached metric handles (no-op instruments when the
        # registry is disabled, so the hot path never branches on config).
        metrics = self.obs.metrics
        self._m_batches = metrics.counter(
            "uvm_batches_total", "Batches through the servicing path", labels=("kind",)
        )
        self._m_faults = metrics.counter(
            "uvm_faults_total", "Faults fetched from the HW buffer", labels=("kind",)
        )
        self._m_pages = metrics.counter(
            "uvm_pages_total", "Pages handled on the fault path", labels=("op",)
        )
        self._m_bytes = metrics.counter(
            "uvm_bytes_total", "Bytes migrated over the interconnect", labels=("dir",)
        )
        self._m_hostos = metrics.counter(
            "uvm_hostos_total", "Host-OS operations on the fault path", labels=("op",)
        )
        self._m_batch_usec = metrics.histogram(
            "uvm_batch_service_usec", "Batch servicing time (simulated µs)"
        )
        self._m_batch_faults = metrics.histogram(
            "uvm_batch_faults", "Raw faults per batch", buckets=DEFAULT_COUNT_BUCKETS
        )
        self._m_retries = metrics.counter(
            "uvm_retries_total",
            "Driver retries after transient fault-path failures",
            labels=("site",),
        )
        self._m_degrade = metrics.counter(
            "uvm_degrade_total",
            "Graceful degradations on the fault path",
            labels=("kind",),
        )
        self._m_failovers = metrics.counter(
            "uvm_ce_failovers_total", "Copy-engine failovers after stuck bursts"
        )
        # Labeled children resolved once: ``family.labels(x)`` is a dict
        # lookup plus (first time) child creation, and _finish_record_obs
        # pays it 17 times per batch — hoist every fixed label out of the
        # per-batch path.  Disabled registries hand back the null instrument
        # from .labels(), so the cached handles stay no-ops.
        self._m_batches_fault = self._m_batches.labels("fault")
        self._m_batches_hinted = self._m_batches.labels("hinted")
        self._m_faults_raw = self._m_faults.labels("raw")
        self._m_faults_unique = self._m_faults.labels("unique")
        self._m_faults_duplicate = self._m_faults.labels("duplicate")
        self._m_faults_dropped = self._m_faults.labels("dropped")
        self._m_pages_migrated = self._m_pages.labels("migrated_h2d")
        self._m_pages_populated = self._m_pages.labels("populated")
        self._m_pages_prefetched = self._m_pages.labels("prefetched")
        self._m_pages_unmapped = self._m_pages.labels("unmapped")
        self._m_pages_evicted = self._m_pages.labels("evicted")
        self._m_bytes_h2d = self._m_bytes.labels("h2d")
        self._m_bytes_d2h = self._m_bytes.labels("d2h")
        self._m_hostos_unmap = self._m_hostos.labels("unmap_calls")
        self._m_hostos_dma = self._m_hostos.labels("dma_mappings")
        self._m_hostos_radix = self._m_hostos.labels("radix_nodes")
        self._m_retries_dma = self._m_retries.labels("dma")
        self._m_retries_ce = self._m_retries.labels("ce")
        self._m_retries_populate = self._m_retries.labels("populate")
        self._m_degrade_accessed_by = self._m_degrade.labels("accessed-by-skip")
        self._m_degrade_dma_defer = self._m_degrade.labels("dma-defer")
        self._m_degrade_transfer_defer = self._m_degrade.labels("transfer-defer")
        self._m_degrade_prefetch_fallback = self._m_degrade.labels("prefetch-fallback")
        self._m_degrade_scope_skip = self._m_degrade.labels("scope-skip")
        #: Cached observability flags (fixed per run): the per-batch paths
        #: skip span-context and phase-mark construction entirely when
        #: nothing consumes them.
        self._spans_on = self.obs.spans.enabled
        self._obs_block_on = self._spans_on or self.obs.chrome.enabled
        #: Flight recorder (bounded ring of recent events; null object when
        #: off, so the per-batch paths call it unconditionally).
        self.flight = self.obs.flight
        self.eviction.attach_obs(self.obs)
        #: Simulated timestamp where the current VABlock's service started on
        #: the trace timeline (per-block costs apply to the clock only after
        #: the block loop, so the timeline is laid out from this cursor).
        self._block_cursor = 0.0
        #: Elapsed cost within the current block (kept current by ``spend``).
        self._block_elapsed = 0.0
        #: Per-block (attr, µs) phase marks for trace slices; None = off.
        self._phase_marks: Optional[List[Tuple[str, float]]] = None

    # ----------------------------------------------------------- allocation

    def register_allocation(self, start_page: int, num_pages: int) -> None:
        """Track a new managed allocation's VABlocks."""
        self.vablocks.register_allocation(start_page, num_pages)

    # ---------------------------------------------------------------- hints

    def bulk_migrate(self, pages) -> BatchRecord:
        """cudaMemPrefetchAsync-to-device: migrate ``pages`` through the
        per-VABlock servicing path without any faults.

        Bulk migration pays population/DMA/unmap/transfer exactly like fault
        servicing — it goes through the same VA-block code — but skips the
        fault fetch, the per-fault servicing bookkeeping, and the reactive
        prefetcher, which is why hinted migration approaches explicit-copy
        efficiency (related work [10]).
        """
        record = BatchRecord(batch_id=self._batch_id, hinted=True)
        self._batch_id += 1
        record.t_start = self.clock.now
        try:
            self.flight.record("batch.open", record.batch_id, "migrate")
            self.san.on_batch_start(self, record)
            by_block: Dict[int, List[int]] = {}
            for page in sorted(set(pages)):
                by_block.setdefault(vablock_of_page(page), []).append(page)
            outcome = ServiceOutcome(record=record)
            block_costs: List[float] = []
            pinned: Set[int] = set()
            chrome_on = self.obs.chrome.enabled
            emit_obs = self._obs_block_on
            self._block_cursor = self.clock.now
            for block_id, block_pages in by_block.items():
                pinned.add(block_id)
                work = BlockWork(block_id=block_id, pages=block_pages, hinted=True)
                t_block = self._block_cursor
                self._phase_marks = [] if chrome_on else None
                cost, deferred = self._service_block(work, record, outcome, pinned)
                if emit_obs:
                    self._emit_block_obs(work, t_block, cost, record)
                self._block_cursor = t_block + cost
                block_costs.append(cost)
                if deferred:
                    pinned.discard(block_id)
            record.num_vablocks = len(by_block)
            record.vablock_fault_counts = np.array(
                [len(p) for p in by_block.values()], dtype=np.int32
            )
            self._advance_block_phase(block_costs)
        except UvmError:
            # Fail-fast retry exhaustion (or any servicing failure) must not
            # leave the batch open: close the record on the abort path so
            # the log and UVMSan agree the batch ended.
            self._abort_record(record)
            raise
        record.t_end = self.clock.now
        self.log.append(record)
        self._finish_record_obs(record)
        self.san.on_batch_end(self, record, outcome)
        return record

    def advise_read_mostly(self, pages) -> None:
        """cudaMemAdviseSetReadMostly over ``pages``' VABlocks: migrations
        duplicate rather than move until a GPU write collapses the hint."""
        for block_id in sorted({vablock_of_page(p) for p in pages}):
            if block_id in self.vablocks:
                self.vablocks.get(block_id).read_mostly = True

    def advise_accessed_by(self, pages) -> BatchRecord:
        """cudaMemAdviseSetAccessedBy (device): direct-map ``pages`` so the
        GPU accesses them remotely over the interconnect — no faults, no
        migration, no device memory consumed.  Pays DMA-mapping setup."""
        record = BatchRecord(batch_id=self._batch_id, hinted=True)
        self._batch_id += 1
        record.t_start = self.clock.now
        try:
            self.flight.record("batch.open", record.batch_id, "advise")
            self.san.on_batch_start(self, record)
            self._advise_accessed_by(record, pages)
        except UvmError:
            # Fail-fast DMA exhaustion raises out of the hinted batch; close
            # the record on the abort path so the log and UVMSan agree.
            self._abort_record(record)
            raise
        record.t_end = self.clock.now
        self.log.append(record)
        self._finish_record_obs(record)
        self.san.on_batch_end(self, record)
        return record

    def _advise_accessed_by(self, record: BatchRecord, pages) -> None:
        is_resident = self.device.page_table.is_resident
        new_pages = [p for p in sorted(set(pages)) if not is_resident(p)]
        if not new_pages:
            return
        result = None
        attempt = 1
        while result is None:
            try:
                result = self.dma.map_pages(new_pages)
            except DmaMapFault as exc:
                record.retries_dma += 1
                self._m_retries_dma.inc()
                self.flight.record("retry", "dma", attempt, record.batch_id)
                if attempt >= self.retry.max_attempts:
                    if self.retry.fail_fast:
                        raise RetryExhausted("dma.map_fail", attempt, exc)
                    break
                backoff = self.retry.backoff_usec(attempt)
                self.clock.advance(backoff)
                record.time_retry_backoff += backoff
                attempt += 1
        if result is None:
            # Degrade: leave the pages unmapped — the hint is advisory,
            # so the GPU simply demand-faults them later.
            self._m_degrade_accessed_by.inc()
            return
        self.clock.advance(result.cost_usec)
        record.time_dma = result.cost_usec
        record.dma_mappings_created += result.new_mappings
        record.radix_nodes_allocated += result.new_nodes
        pt_cost = self.cost.pagetable_cost(len(new_pages))
        self.clock.advance(pt_cost)
        record.time_pagetable = pt_cost
        self.device.page_table.map_pages(new_pages)
        # One grouping pass (new_pages is sorted, so blocks come out in
        # ascending order) instead of a per-block rescan of every page.
        by_block: Dict[int, List[int]] = {}
        for page in new_pages:
            by_block.setdefault(vablock_of_page(page), []).append(page)
        for block_id, block_pages in by_block.items():
            if block_id in self.vablocks:
                self.vablocks.get(block_id).remote_pages.update(block_pages)

    def is_remote_mapped(self, page: int) -> bool:
        """True when ``page`` is direct-mapped (accessed-by), not migrated."""
        block_id = vablock_of_page(page)
        if block_id not in self.vablocks:
            return False
        return page in self.vablocks.get(block_id).remote_pages

    # -------------------------------------------------------------- policy

    @property
    def effective_batch_size(self) -> int:
        """Current fetch limit (fixed, or duplicate-adaptive under ablation)."""
        return self._current_batch_size

    def _update_adaptive(self, record: BatchRecord) -> None:
        if not self.config.driver.adaptive_batch or record.num_faults_raw == 0:
            return
        dup_rate = record.duplicate_count / record.num_faults_raw
        lo = self.config.driver.adaptive_batch_min
        hi = self.config.driver.batch_size
        if dup_rate > 0.5:
            self._current_batch_size = max(lo, self._current_batch_size // 2)
        else:
            self._current_batch_size = min(hi, self._current_batch_size * 2)

    # ------------------------------------------------------------- service

    def service_next_batch(self, slept: bool) -> ServiceOutcome:
        """Service one fault batch from the GPU buffer (must be non-empty)."""
        record = BatchRecord(batch_id=self._batch_id, slept_before=slept)
        self._batch_id += 1
        record.t_start = self.clock.now
        try:
            self.flight.record("batch.open", record.batch_id, "fault")
            self.san.on_batch_start(self, record)
            outcome = self._service_batch_body(record, slept)
        except UvmError:
            # Fail-fast retry exhaustion (or any mid-service failure) must
            # not leave the batch open: close the record on the abort path
            # so the log and UVMSan agree the batch ended.
            self._abort_record(record)
            raise
        record.t_end = self.clock.now
        self.log.append(record)
        if self.trace is not None:
            self.trace.emit(record.t_end, "batch", record.batch_id, record.num_faults_raw)
        self._finish_record_obs(record)
        self.san.on_batch_end(self, record, outcome)
        self._update_adaptive(record)
        return outcome

    def _service_batch_body(self, record: BatchRecord, slept: bool) -> ServiceOutcome:
        spans = self.obs.spans
        spans_on = self._spans_on
        chrome = self.obs.chrome
        chrome_on = chrome.enabled

        # 1. Wake + interrupt acknowledge.
        if slept:
            with spans.span("driver.wake", batch=record.batch_id) if spans_on else NULL_SPAN:
                record.time_wake = self._spend(self.cost.interrupt_wake_usec)
        self.device.gmmu.acknowledge()

        # 2. Fetch.
        with spans.span("driver.fetch", batch=record.batch_id) if spans_on else NULL_SPAN:
            faults = self.device.fault_buffer.fetch(self.effective_batch_size)
            record.time_fetch = self._spend(self.cost.fetch_cost(len(faults)))

        if self.trace is not None:
            # Per-fault instrumentation (the paper's first driver variant):
            # origin SM, address, access type, arrival time.  Enables trace
            # capture + open-loop replay (repro.analysis.traces).
            for f in faults:
                self.trace.emit(
                    f.timestamp,
                    "fault",
                    record.batch_id,
                    f.page,
                    int(f.access),
                    f.sm_id,
                    f.warp_uid,
                )
        if chrome_on:
            # Fault instants on the issuing SM's trace row, at buffer-arrival
            # time (the paper's per-fault arrival instrumentation, Fig 4).
            pid_sm = self.obs.pid(PID_SM)
            for f in faults:
                chrome.instant(
                    "fault",
                    "fault",
                    ts=f.timestamp,
                    pid=pid_sm,
                    tid=f.sm_id,
                    args={"page": f.page, "batch": record.batch_id},
                )

        # 3. Preprocess / dedup.
        with spans.span("driver.preprocess", batch=record.batch_id) if spans_on else NULL_SPAN:
            batch = assemble_batch(faults, self.device.config.num_sms)
            record.time_preprocess = self._spend(self.cost.preprocess_cost(len(faults)))
        if faults:
            record.t_first_fault = faults[0].timestamp
            record.t_last_fault = faults[-1].timestamp
        record.num_faults_raw = batch.num_raw
        record.num_faults_unique = batch.num_unique
        record.dup_same_utlb = batch.dup_same_utlb
        record.dup_cross_utlb = batch.dup_cross_utlb
        record.sm_fault_counts = batch.sm_fault_counts
        record.num_vablocks = batch.num_blocks
        record.vablock_fault_counts = np.array(
            [len(w.pages) for w in batch.blocks], dtype=np.int32
        )

        # 4. Per-VABlock processing.  Blocks already serviced in this batch
        # stay pinned (their block locks are held until the replay): a later
        # block's eviction must not undo this batch's own migrations, or a
        # working set spanning more blocks than device chunks would thrash
        # without ever making progress.  A block that cannot obtain memory
        # because everything is pinned is deferred — its faults drop at the
        # flush and reissue (the driver's fault-retry path).
        outcome = ServiceOutcome(record=record)
        block_costs: List[float] = []
        pinned: set = set()
        emit_obs = self._obs_block_on
        self._block_cursor = self.clock.now
        for work in batch.blocks:
            pinned.add(work.block_id)
            t_block = self._block_cursor
            self._phase_marks = [] if chrome_on else None
            cost, deferred = self._service_block(work, record, outcome, pinned)
            if emit_obs:
                self._emit_block_obs(work, t_block, cost, record)
            self._block_cursor = t_block + cost
            block_costs.append(cost)
            if deferred:
                pinned.discard(work.block_id)
                if isinstance(faults, FaultArrays):
                    outcome.unserviced_faults.extend(
                        faults.rows_for_pages(work.pages)
                    )
                else:
                    block_pages = set(work.pages)
                    outcome.unserviced_faults.extend(
                        f for f in faults if f.page in block_pages
                    )
        self._advance_block_phase(block_costs)

        # 5. Replay: flush buffer (drop), clear µTLB waiting, push replay.
        with spans.span("driver.replay", batch=record.batch_id) if spans_on else NULL_SPAN:
            outcome.dropped_faults = self.device.fault_buffer.flush()
            record.dropped_at_flush = len(outcome.dropped_faults)
            record.time_replay = self._spend(self.cost.replay_usec)
            self.device.replay_all()
        if chrome_on:
            chrome.instant(
                "replay",
                "replay",
                ts=self.clock.now,
                pid=self.obs.pid(PID_DRIVER),
                tid=TID_BATCH,
                args={"batch": record.batch_id, "dropped": record.dropped_at_flush},
            )

        # Pages evicted by later blocks of this batch are not serviced.
        resident = self.device.page_table.resident
        still = [p for p in outcome.serviced_pages if p in resident]
        if len(still) != len(outcome.serviced_pages):
            gone = set(outcome.serviced_pages) - set(still)
            outcome.serviced_pages = still
            outcome.unserviced_faults = (
                faults.rows_for_pages(gone)
                if isinstance(faults, FaultArrays)
                else [f for f in faults if f.page in gone]
            )
        return outcome

    def _abort_record(self, record: BatchRecord) -> None:
        """Close a batch whose servicing raised.

        The record is marked :attr:`~BatchRecord.aborted` and appended so
        the log never loses a started batch; UVMSan's abort hook checks the
        envelope but skips the reconciliation identities (the counters and
        timers stopped wherever the exception unwound).
        """
        record.aborted = True
        record.t_end = self.clock.now
        self.log.append(record)
        self._finish_record_obs(record)
        self.san.on_batch_abort(self, record)

    # ------------------------------------------------------ retry/failover

    def _dma_map_with_retry(self, pages: List[int], record: BatchRecord, spend):
        """DMA-map ``pages`` with bounded exponential backoff.

        Returns the :class:`~repro.hostos.dma.DmaMapResult`, or None when
        the retry budget ran out in degrade mode (the caller defers or
        skips).  Fail-fast mode raises :class:`RetryExhausted` instead.
        """
        attempt = 1
        while True:
            try:
                return self.dma.map_pages(pages)
            except DmaMapFault as exc:
                record.retries_dma += 1
                self._m_retries_dma.inc()
                self.flight.record("retry", "dma", attempt, record.batch_id)
                if attempt >= self.retry.max_attempts:
                    if self.retry.fail_fast:
                        raise RetryExhausted("dma.map_fail", attempt, exc)
                    return None
                spend(self.retry.backoff_usec(attempt), "time_retry_backoff")
                attempt += 1

    def _transfer_with_retry(
        self,
        direction: str,
        runs: List[int],
        record: BatchRecord,
        spend,
        allow_degrade: bool = True,
    ) -> bool:
        """Run one copy-engine burst under the retry/failover policy.

        Transient aborts charge the wasted partial transfer plus backoff and
        re-issue; a stuck burst charges the phase deadline and fails over to
        the sibling engine.  Returns True on completion; False when the
        budget ran out in degrade mode (never for ``allow_degrade=False``
        paths like eviction write-back, where losing the data is not an
        option — those raise :class:`RetryExhausted` in either failure
        mode).
        """
        ce = self.device.copy_engines[self._active_ce_id]
        attempt = 1
        while True:
            try:
                ce.ts_hint = self._block_cursor + self._block_elapsed
                if direction == "h2d":
                    cost = ce.host_to_device(runs)
                else:
                    cost = ce.device_to_host(runs)
                spend(cost, "time_transfer_" + direction)
                return True
            except TransferFault as exc:
                spend(exc.wasted_usec, "time_retry_backoff")
                record.retries_transfer += 1
                self._m_retries_ce.inc()
                self.flight.record("retry", "ce", attempt, record.batch_id)
                if attempt >= self.retry.max_attempts:
                    if self.retry.fail_fast or not allow_degrade:
                        raise RetryExhausted("ce.transfer_fault", attempt, exc)
                    return False
                spend(self.retry.backoff_usec(attempt), "time_retry_backoff")
            except TransferStuck as exc:
                spend(self.retry.deadline_usec, "time_retry_backoff")
                record.ce_failovers += 1
                self._m_failovers.inc()
                self.flight.record("failover", "ce", attempt, record.batch_id)
                if attempt >= self.retry.max_attempts:
                    if self.retry.fail_fast or not allow_degrade:
                        raise RetryExhausted("ce.stuck", attempt, exc)
                    return False
                self._active_ce_id = 1 - ce.engine_id
                ce = self.device.copy_engines[self._active_ce_id]
            attempt += 1

    # ---------------------------------------------------------- block path

    def _service_block(
        self,
        work: BlockWork,
        record: BatchRecord,
        outcome: ServiceOutcome,
        pinned: Set[int],
    ) -> Tuple[float, bool]:
        """Service one VABlock's faults.

        Returns ``(cost, deferred)``; ``deferred`` is True when the block
        could not obtain device memory because every resident block is
        pinned by this batch — its faults must retry in a later batch.
        """
        try:
            block = self.vablocks.get(work.block_id)
        except KeyError:
            raise InvalidAccess(
                f"faults target VABlock {work.block_id} outside any managed allocation"
            )
        total = 0.0
        marks = self._phase_marks
        self._block_elapsed = 0.0

        def spend(usec: float, attr: str) -> float:
            nonlocal total
            jittered = self.cost.jitter(self.rng, usec)
            setattr(record, attr, getattr(record, attr) + jittered)
            total += jittered
            self._block_elapsed = total
            if marks is not None:
                marks.append((attr, jittered))
            return jittered

        spend(self.cost.vablock_base_usec, "time_block_base")

        faulted = [p for p in work.pages if p not in block.resident_pages]
        if not work.hinted:
            # Per-unique-page fault servicing (VMA/policy/service
            # bookkeeping); prefetched pages ride along in bulk and skip
            # this cost, as do hint-driven migrations.
            spend(
                len(faulted) * self.cost.fault_service_per_page_usec,
                "time_block_base",
            )

        # (a) physical chunk, evicting if necessary.
        allocated_now = False
        if not block.is_gpu_allocated:
            chunk = self.device.chunks.allocate()
            while chunk is None:
                if not self.config.driver.eviction_enabled:
                    raise OutOfDeviceMemory(
                        "device memory exhausted with eviction disabled"
                    )
                if self.eviction.pick_victim(pinned) is None:
                    # Everything resident is pinned by this batch: defer.
                    return total, True
                self._evict_one(pinned, record, outcome, spend)
                chunk = self.device.chunks.allocate()
            block.gpu_chunk = chunk
            block.alloc_stamp = self.vablocks.next_stamp()
            allocated_now = True
            record.blocks_allocated += 1
            spend(self.cost.chunk_alloc_usec, "time_alloc")
            self.eviction.on_gpu_allocated(block.block_id)
            self.san.on_block_allocated(block)
        else:
            self.eviction.on_fault_service(block.block_id)

        # (b) compulsory DMA state (once per block lifetime).
        if not block.dma_initialized:
            result = self._dma_map_with_retry(sorted(block.valid_pages), record, spend)
            if result is None:
                # Degrade: DMA state could not be created this batch.  Defer
                # the block — its faults drop at the flush and reissue, and
                # a later batch retries from untouched radix-tree state.
                record.blocks_deferred += 1
                self._m_degrade_dma_defer.inc()
                return total, True
            spend(result.cost_usec, "time_dma")
            block.dma_initialized = True
            record.new_dma_blocks += 1
            record.dma_mappings_created += result.new_mappings
            record.radix_nodes_allocated += result.new_nodes
            record.radix_slab_refills += result.slab_refills

        # (c) prefetch expansion (reactive only: hints specify exact ranges).
        prefetched: Set[int] = set()
        if self.config.driver.prefetch_enabled and faulted and not work.hinted:
            prefetched = self.prefetcher.expand(block, faulted)
            spend(
                self.cost.prefetch_decision_cost(REGIONS_PER_VABLOCK),
                "time_prefetch_decide",
            )
            if self.prefetcher.scope_blocks > 1:
                self._scope_expansion(block, faulted, prefetched, record, outcome, spend)

        # ``faulted`` is already unique (deduped batch pages / hint lists),
        # so the set union + rebuild is only needed when a prefetch actually
        # expanded the page set — the common no-prefetch case just sorts.
        target = sorted(set(faulted) | prefetched) if prefetched else sorted(faulted)
        if not target:
            return total, False

        # (d) CPU unmapping when the block is partially host-resident (§4.4).
        # Read-mostly blocks *duplicate* instead of migrating: the host
        # mappings stay intact — unless this batch carries GPU writes, which
        # collapse the duplication and pay the deferred unmap now.
        collapse = block.read_mostly and bool(work.write_pages)
        if collapse:
            block.read_mostly = False
        mapped = self.host_vm.mapped_pages_of(block.valid_pages)
        if mapped and (not block.read_mostly or collapse):
            stats = self.host_vm.unmap_range(block.valid_pages)
            unmap_usec = self.cost.unmap_cost(stats.pages_unmapped, stats.distinct_threads)
            if self.config.driver.async_unmap:
                # Ablation: charge off the fault path.
                jit = self.cost.jitter(self.rng, unmap_usec)
                record.time_unmap += jit
                self.async_unmap_backlog_usec += jit
            else:
                spend(unmap_usec, "time_unmap")
            record.unmap_calls += 1
            record.pages_unmapped += stats.pages_unmapped

        # (e) population + (f) transfer.
        transfer_pages = [p for p in target if self.host_vm.has_valid_data(p)]
        populate_pages = len(target) - len(transfer_pages)
        if allocated_now and block.evict_count > 0:
            # Restarted migration re-populates the whole target (§5.1).
            populate_pages = len(target)
        if populate_pages and self.inj.fire("host.populate_enomem"):
            # Injected host ENOMEM: reclaim device memory (evict a victim,
            # releasing its staged buffers — §5.1's pressure path), back
            # off, then retry the population.
            record.retries_populate += 1
            self._m_retries_populate.inc()
            self.flight.record("retry", "populate", 1, record.batch_id)
            if (
                self.config.driver.eviction_enabled
                and self.eviction.pick_victim(pinned) is not None
            ):
                self._evict_one(pinned, record, outcome, spend)
            spend(self.retry.backoff_usec(1), "time_retry_backoff")
        spend(self.cost.population_cost(populate_pages), "time_population")
        record.pages_populated += populate_pages
        if transfer_pages:
            spend(
                len(transfer_pages) * self.cost.migration_prep_per_page_usec,
                "time_migrate_prep",
            )
            # The CE trace slice is placed where this block's work actually
            # sits on the timeline (the retry wrapper sets ts_hint per
            # attempt; the clock itself advances after the loop).
            ok = self._transfer_with_retry(
                "h2d", contiguous_runs(transfer_pages), record, spend
            )
            if not ok and prefetched:
                # Graceful degradation: drop the speculative prefetch and
                # fall back to demand paging — retry with only the pages
                # that actually faulted.
                record.prefetch_fallbacks += 1
                self._m_degrade_prefetch_fallback.inc()
                prefetched = set()
                target = sorted(faulted)
                transfer_pages = [p for p in target if self.host_vm.has_valid_data(p)]
                ok = not transfer_pages or self._transfer_with_retry(
                    "h2d", contiguous_runs(transfer_pages), record, spend
                )
            if not ok:
                # Transfer impossible this batch: defer the block entirely;
                # its faults drop at the flush and reissue later.
                record.blocks_deferred += 1
                self._m_degrade_transfer_defer.inc()
                return total, True
            record.pages_migrated_h2d += len(transfer_pages)
            record.bytes_h2d += len(transfer_pages) * 4096

        # (g) page-table update.
        spend(self.cost.pagetable_cost(len(target)), "time_pagetable")
        self.device.page_table.map_pages(target)
        block.resident_pages.update(target)
        if not block.read_mostly:
            # GPU takes ownership: host copies go stale and eviction must
            # copy back.  Read-mostly blocks keep valid host duplicates.
            self.host_vm.invalidate(target)

        record.pages_prefetched += len(prefetched)
        outcome.serviced_pages.extend(target)
        if self.trace is not None and target:
            # Fig 16c/17c fault-behaviour data: page extent migrated into
            # this block during this batch.
            self.trace.emit(
                self.clock.now,
                "migrate",
                record.batch_id,
                block.block_id,
                target[0],
                target[-1],
                len(target),
            )
        return total, False

    def _evict_one(self, exclude: Set[int], record, outcome, spend) -> None:
        """Evict the LRU VABlock (paper §5.1: fail-alloc, migrate back,
        restart)."""
        victim_id = self.eviction.require_victim(exclude)
        victim = self.vablocks.get(victim_id)
        pages = sorted(victim.resident_pages)
        evict_t0 = self._block_cursor + self._block_elapsed
        evict_usec = spend(self.cost.evict_restart_usec, "time_eviction")
        evict_usec += spend(self.cost.pagetable_cost(len(pages)), "time_eviction")
        if pages:
            elapsed_before = self._block_elapsed
            # Write-back must complete — losing the only copy of the data is
            # not a degradation option — so retry exhaustion raises even in
            # degrade mode (allow_degrade=False).
            self._transfer_with_retry(
                "d2h", contiguous_runs(pages), record, spend, allow_degrade=False
            )
            evict_usec += self._block_elapsed - elapsed_before
            record.bytes_d2h += len(pages) * 4096
            self.host_vm.mark_valid(pages)
            self.device.page_table.unmap_pages(pages)
        # Evicted data lands on the host *unmapped*: paging it back in later
        # skips unmap_mapping_range (the lower levels of Fig 13).
        if not self.host_vm.mapped_pages_of(victim.valid_pages):
            record.evictions_unmap_free += 1
        self.device.chunks.free(victim.gpu_chunk)
        victim.gpu_chunk = None
        victim.resident_pages = set()
        victim.evict_count += 1
        self.eviction.on_evicted(victim_id)
        self.san.on_block_evicted(victim)
        record.evictions += 1
        record.pages_evicted += len(pages)
        outcome.evicted_pages.extend(pages)
        self._m_pages_evicted.inc(len(pages))
        self.flight.record("evict", victim_id, len(pages), record.batch_id)
        if self.obs.chrome.enabled:
            self.obs.chrome.duration(
                f"evict block {victim_id}",
                "evict",
                ts=evict_t0,
                dur=evict_usec,
                pid=self.obs.pid(PID_EVICTION),
                tid=0,
                args={"pages": len(pages), "batch": record.batch_id},
            )
        if self.trace is not None:
            first = pages[0] if pages else victim.first_page
            last = pages[-1] if pages else victim.first_page
            self.trace.emit(
                self.clock.now,
                "evict",
                record.batch_id,
                victim_id,
                first,
                last,
                len(pages),
            )

    def _scope_expansion(
        self,
        block: VABlockState,
        faulted: List[int],
        prefetched: Set[int],
        record: BatchRecord,
        outcome: ServiceOutcome,
        spend,
    ) -> None:
        """Enlarged prefetch scope (§6 ablation): when a block goes fully
        dense, mirror the fetch into already-GPU-allocated neighbour blocks
        (each neighbour pays its own population/transfer/page-table costs)."""
        covered = len(faulted) + len(prefetched) + len(block.resident_pages)
        if covered < block.num_valid_pages:
            return
        for nbr_id in self.prefetcher.neighbour_blocks(block.block_id):
            if nbr_id not in self.vablocks:
                continue
            nbr = self.vablocks.get(nbr_id)
            if not nbr.is_gpu_allocated:
                # Allocate the neighbour only from free memory: a speculative
                # cross-block prefetch must not trigger evictions.
                chunk = self.device.chunks.allocate()
                if chunk is None:
                    continue
                nbr.gpu_chunk = chunk
                nbr.alloc_stamp = self.vablocks.next_stamp()
                record.blocks_allocated += 1
                spend(self.cost.chunk_alloc_usec, "time_alloc")
                self.eviction.on_gpu_allocated(nbr_id)
                self.san.on_block_allocated(nbr)
                if not nbr.dma_initialized:
                    result = self._dma_map_with_retry(
                        sorted(nbr.valid_pages), record, spend
                    )
                    if result is None:
                        # Speculative neighbour: just skip it this batch.
                        self._m_degrade_scope_skip.inc()
                        continue
                    spend(result.cost_usec, "time_dma")
                    nbr.dma_initialized = True
                    record.new_dma_blocks += 1
                    record.dma_mappings_created += result.new_mappings
                    record.radix_nodes_allocated += result.new_nodes
                    record.radix_slab_refills += result.slab_refills
            target = sorted(p for p in nbr.valid_pages if p not in nbr.resident_pages)
            if not target:
                continue
            mapped = self.host_vm.mapped_pages_of(nbr.valid_pages)
            if mapped:
                stats = self.host_vm.unmap_range(nbr.valid_pages)
                spend(
                    self.cost.unmap_cost(stats.pages_unmapped, stats.distinct_threads),
                    "time_unmap",
                )
                record.unmap_calls += 1
                record.pages_unmapped += stats.pages_unmapped
            transfer = [p for p in target if self.host_vm.has_valid_data(p)]
            spend(self.cost.population_cost(len(target) - len(transfer)), "time_population")
            record.pages_populated += len(target) - len(transfer)
            if transfer:
                spend(
                    len(transfer) * self.cost.migration_prep_per_page_usec,
                    "time_migrate_prep",
                )
                if not self._transfer_with_retry(
                    "h2d", contiguous_runs(transfer), record, spend
                ):
                    # Speculative neighbour transfer: skip it this batch.
                    self._m_degrade_scope_skip.inc()
                    continue
                record.pages_migrated_h2d += len(transfer)
                record.bytes_h2d += len(transfer) * 4096
            spend(self.cost.pagetable_cost(len(target)), "time_pagetable")
            self.device.page_table.map_pages(target)
            nbr.resident_pages.update(target)
            self.host_vm.invalidate(target)
            record.pages_prefetched += len(target)
            outcome.serviced_pages.extend(target)

    # -------------------------------------------------------- observability

    def _emit_block_obs(self, work: BlockWork, t_block: float, cost: float, record: BatchRecord) -> None:
        """Log one serviced VABlock as a span plus trace slices.

        Blocks are laid out serially from the clock time at the start of the
        block loop (exactly the serial driver's timeline; under the
        parallel-driver ablation the visualization shows total work, while
        the clock advances by the critical path).
        """
        obs = self.obs
        if obs.spans.enabled and cost > 0.0:
            obs.spans.record(
                "driver.vablock",
                "driver",
                sim_start=t_block,
                sim_dur=cost,
                depth=1,
                block=work.block_id,
                batch=record.batch_id,
            )
        marks = self._phase_marks
        if marks is None:
            return
        self._phase_marks = None
        if not marks:
            return
        chrome = obs.chrome
        pid = obs.pid(PID_DRIVER)
        chrome.duration(
            f"vablock {work.block_id}",
            "driver",
            ts=t_block,
            dur=cost,
            pid=pid,
            tid=TID_VABLOCK,
            args={"batch": record.batch_id, "faults": len(work.pages)},
        )
        offset = t_block
        for attr, usec in marks:
            name = attr[5:] if attr.startswith("time_") else attr
            chrome.duration(name, "driver", ts=offset, dur=usec, pid=pid, tid=TID_PHASE)
            offset += usec

    def _finish_record_obs(self, record: BatchRecord) -> None:
        """Fold one finished batch into metrics, spans, trace, and sink."""
        obs = self.obs
        self.flight.record(
            "batch.abort" if record.aborted else "batch.close",
            record.batch_id,
            record.num_faults_raw,
            record.duration,
        )
        (self._m_batches_hinted if record.hinted else self._m_batches_fault).inc()
        self._m_faults_raw.inc(record.num_faults_raw)
        self._m_faults_unique.inc(record.num_faults_unique)
        self._m_faults_duplicate.inc(record.duplicate_count)
        self._m_faults_dropped.inc(record.dropped_at_flush)
        self._m_pages_migrated.inc(record.pages_migrated_h2d)
        self._m_pages_populated.inc(record.pages_populated)
        self._m_pages_prefetched.inc(record.pages_prefetched)
        self._m_pages_unmapped.inc(record.pages_unmapped)
        self._m_bytes_h2d.inc(record.bytes_h2d)
        self._m_bytes_d2h.inc(record.bytes_d2h)
        self._m_hostos_unmap.inc(record.unmap_calls)
        self._m_hostos_dma.inc(record.dma_mappings_created)
        self._m_hostos_radix.inc(record.radix_nodes_allocated)
        self._m_batch_usec.observe(record.duration)
        self._m_batch_faults.observe(record.num_faults_raw)
        if obs.spans.enabled:
            # The batch envelope as a manual span: reconciles against
            # ``BatchRecord.duration``/``service_time`` in tests.
            obs.spans.record(
                "driver.batch",
                "driver",
                sim_start=record.t_start,
                sim_dur=record.duration,
                batch=record.batch_id,
                hinted=record.hinted,
            )
        if obs.chrome.enabled:
            kind = "hinted migration" if record.hinted else "batch"
            obs.chrome.duration(
                f"{kind} {record.batch_id}",
                "driver",
                ts=record.t_start,
                dur=record.duration,
                pid=obs.pid(PID_DRIVER),
                tid=TID_BATCH,
                args={
                    "faults_raw": record.num_faults_raw,
                    "faults_unique": record.num_faults_unique,
                    "vablocks": record.num_vablocks,
                    "pages_h2d": record.pages_migrated_h2d,
                    "evictions": record.evictions,
                },
            )
            if not record.hinted:
                # The GPU is stalled while the driver services (§6): one
                # aggregate stall slice on the SM process' summary row.
                obs.chrome.duration(
                    "stall (driver servicing)",
                    "stall",
                    ts=record.t_start,
                    dur=record.duration,
                    pid=obs.pid(PID_SM),
                    tid=self.device.config.num_sms,
                    args={"batch": record.batch_id},
                )
        if obs.sink is not None:
            obs.sink.write_batch_record(record)

    # ------------------------------------------------------------ internals

    def _spend(self, usec: float) -> float:
        """Advance the clock by a jittered cost; returns the jittered value."""
        jittered = self.cost.jitter(self.rng, usec)
        self.clock.advance(jittered)
        return jittered

    def _advance_block_phase(self, block_costs: List[float]) -> None:
        """Advance the clock for the per-block work.

        The serial driver pays the sum.  Under the parallel-driver ablation
        (§6) blocks are assigned round-robin to ``service_threads`` bins and
        the clock advances by the largest bin — the imbalance the paper
        predicts shows up as a weak speedup.
        """
        if not block_costs:
            return
        threads = self.config.driver.service_threads
        if threads <= 1:
            self.clock.advance(sum(block_costs))
            return
        bins = [0.0] * threads
        for i, cost in enumerate(block_costs):
            bins[i % threads] += cost
        self.clock.advance(max(bins))
