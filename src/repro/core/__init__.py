"""The UVM driver model — the paper's primary subject.

Implements the nvidia-uvm fault-servicing engine at the granularity the
paper analyzes: fault batches (§2.2), duplicate classification (§4.2),
per-VABlock processing (§4.3), host-OS interaction (§4.4), the tree/density
prefetcher and LRU VABlock eviction (§5), and the per-batch instrumentation
record equivalent to the paper's modified-driver logs.
"""

from .batch import AssembledBatch, BlockWork, assemble_batch
from .batch_record import BatchRecord
from .vablock import VABlockManager, VABlockState
from .prefetch import DensityPrefetcher
from .eviction import LruEvictionPolicy
from .driver import UvmDriver
from .instrumentation import BatchLog

__all__ = [
    "AssembledBatch",
    "BlockWork",
    "assemble_batch",
    "BatchRecord",
    "VABlockManager",
    "VABlockState",
    "DensityPrefetcher",
    "LruEvictionPolicy",
    "UvmDriver",
    "BatchLog",
]
