"""Batch log: collection and serialization of instrumentation records.

The paper collects batch metadata through "a custom logging tool that is
more reliable than dmesg" (§3.1).  :class:`BatchLog` plays that role: an
append-only store of :class:`~repro.core.batch_record.BatchRecord` with
JSONL persistence so experiment outputs can be saved and re-analyzed without
re-running the simulation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from .batch_record import BatchRecord


class BatchLog:
    """Append-only per-batch instrumentation log."""

    def __init__(self) -> None:
        self._records: List[BatchRecord] = []

    def append(self, record: BatchRecord) -> None:
        self._records.append(record)

    @property
    def records(self) -> List[BatchRecord]:
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[BatchRecord]:
        return iter(self._records)

    def __getitem__(self, idx):
        return self._records[idx]

    # ------------------------------------------------------------ aggregates

    @property
    def total_batch_time(self) -> float:
        """Aggregate batch servicing time (µs) — Table 4's "Batch" column."""
        return sum(r.duration for r in self._records)

    @property
    def total_faults_raw(self) -> int:
        return sum(r.num_faults_raw for r in self._records)

    @property
    def total_faults_unique(self) -> int:
        return sum(r.num_faults_unique for r in self._records)

    @property
    def total_bytes_h2d(self) -> int:
        return sum(r.bytes_h2d for r in self._records)

    @property
    def total_evictions(self) -> int:
        return sum(r.evictions for r in self._records)

    # --------------------------------------------------------- serialization

    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write one JSON object per batch to ``path``."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for record in self._records:
                fh.write(json.dumps(record.to_dict()) + "\n")

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "BatchLog":
        log = cls()
        with Path(path).open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    log.append(BatchRecord.from_dict(json.loads(line)))
        return log

    @classmethod
    def from_records(cls, records: Iterable[BatchRecord]) -> "BatchLog":
        log = cls()
        for record in records:
            log.append(record)
        return log
