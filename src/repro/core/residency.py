"""Page/region residency helpers: the 4 KiB → 64 KiB upgrade.

"For x86, pages are upgraded from 4KB to 64KB within the UVM runtime as a
component of prefetching, emulating the 64KB Power9 page size." (paper §2.2)

When prefetching is enabled, a fault on any 4 KiB page promotes its whole
64 KiB region (16 pages) to the migration set; the tree/density prefetcher
then works on regions.  With prefetching disabled only the faulted 4 KiB
pages migrate.
"""

from __future__ import annotations

from typing import Iterable, List, Set

import numpy as np

from ..units import PAGES_PER_REGION, PAGES_PER_VABLOCK, REGIONS_PER_VABLOCK


def region_upgrade(page_offsets: Iterable[int]) -> Set[int]:
    """Expand page offsets (within a VABlock) to full 64 KiB regions.

    >>> sorted(region_upgrade([0]))[:4]
    [0, 1, 2, 3]
    >>> len(region_upgrade([0, 5]))
    16
    """
    out: Set[int] = set()
    for off in page_offsets:
        base = (off // PAGES_PER_REGION) * PAGES_PER_REGION
        out.update(range(base, base + PAGES_PER_REGION))
    return out


def occupancy_vector(page_offsets: Iterable[int]) -> np.ndarray:
    """Boolean occupancy over the 512 page slots of a VABlock."""
    occ = np.zeros(PAGES_PER_VABLOCK, dtype=bool)
    for off in page_offsets:
        occ[off] = True
    return occ


def region_ids(page_offsets: Iterable[int]) -> Set[int]:
    """Distinct 64 KiB region indexes (0..31) covering the offsets."""
    return {off // PAGES_PER_REGION for off in page_offsets}


def regions_touched(occ: np.ndarray) -> int:
    """Number of regions with at least one occupied page."""
    return int(occ.reshape(REGIONS_PER_VABLOCK, PAGES_PER_REGION).any(axis=1).sum())
