"""VABlock eviction policies.

The paper's driver uses LRU: "Oversubscription allows applications to exceed
GPU memory capacity by using a form of LRU eviction ... at the granularity
of 2MB VABlock" (§5.1) — and because "the UVM driver has no information
about page hits", LRU degenerates to *earliest allocated* for dense access
(§5.4, Fig 16c/17c).  The driver only observes faults, so a block's recency
refreshes on allocation and fault service; in-memory hits are invisible.

Alternative policies from the literature the paper discusses are provided
for ablation (``DriverConfig.eviction_policy``):

* ``"lru"`` — the paper's driver (default).
* ``"fifo"`` — strict allocation order, never refreshed: what §5.4 says LRU
  *effectively is* for dense access; comparing the two isolates the value of
  fault-visible recency.
* ``"random"`` — seeded random victim, a common hardware-cheap baseline.
* ``"access-counter"`` — uses the GPU's (sparsely utilized, §2.3) access
  counters to approximate true recency: hits bump a per-block counter that
  decays each eviction, following Ganguly et al. [15]'s direction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Optional, Set

import numpy as np

from ..errors import ConfigError, OutOfDeviceMemory


class LruEvictionPolicy:
    """Fault-visible LRU over GPU-allocated VABlocks (the paper's driver)."""

    name = "lru"

    def __init__(self) -> None:
        #: block_id → None, ordered least- to most-recently fault-touched.
        self._order: "OrderedDict[int, None]" = OrderedDict()
        self.total_evictions = 0
        #: Metric handles installed by :meth:`attach_obs` (null-safe: the
        #: driver always attaches, pointing at no-op instruments when the
        #: metrics registry is disabled).
        self._m_evictions = None
        self._m_resident = None

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._order

    def on_gpu_allocated(self, block_id: int) -> None:
        """A block received a physical chunk: becomes most-recently-used."""
        self._order.pop(block_id, None)
        self._order[block_id] = None
        if self._m_resident is not None:
            self._m_resident.set(len(self._order))

    def on_fault_service(self, block_id: int) -> None:
        """Faults were serviced for a resident block: refresh recency."""
        if block_id in self._order:
            self._order.move_to_end(block_id)

    def attach_obs(self, obs) -> None:
        """Register this policy's metric series with ``obs.metrics``."""
        self._m_evictions = obs.metrics.counter(
            "uvm_evictions_total",
            "VABlocks evicted from device memory",
            labels=("policy",),
        ).labels(self.name)
        self._m_resident = obs.metrics.gauge(
            "uvm_resident_vablocks",
            "GPU-allocated VABlocks tracked by the eviction policy",
        )

    def on_evicted(self, block_id: int) -> None:
        """A block lost its chunk: drop from the order."""
        self._order.pop(block_id, None)
        self.total_evictions += 1
        if self._m_evictions is not None:
            self._m_evictions.inc()
            self._m_resident.set(len(self._order))

    def pick_victim(self, exclude: Set[int]) -> Optional[int]:
        """Least-recently-used allocated block not in ``exclude``.

        ``exclude`` must contain every block being serviced in the current
        batch (the driver cannot evict a block it is actively migrating
        into).  Returns None when no victim exists.
        """
        for block_id in self._order:
            if block_id not in exclude:
                return block_id
        return None

    def require_victim(self, exclude: Set[int]) -> int:
        victim = self.pick_victim(exclude)
        if victim is None:
            raise OutOfDeviceMemory(
                "device memory exhausted and every resident VABlock is "
                "pinned by the current batch"
            )
        return victim

    def lru_order(self) -> Iterable[int]:
        """Blocks from least- to most-recently used (for inspection/tests)."""
        return iter(self._order)

    def on_access_hit(self, block_id: int) -> None:
        """In-memory hit notification — invisible to the real driver (§5.4),
        so the base policy ignores it; counter policies override."""


class FifoEvictionPolicy(LruEvictionPolicy):
    """Strict allocation order: recency is never refreshed.

    This is what §5.4 says the driver's LRU *effectively* becomes for dense
    access; the ablation comparing it to "lru" isolates fault-visible
    recency's value on reuse-heavy patterns.
    """

    name = "fifo"

    def on_fault_service(self, block_id: int) -> None:  # noqa: D102
        pass  # faults do not refresh FIFO order


class RandomEvictionPolicy(LruEvictionPolicy):
    """Seeded random victim selection (hardware-cheap baseline)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = np.random.default_rng(seed)

    def pick_victim(self, exclude: Set[int]) -> Optional[int]:
        candidates = [b for b in self._order if b not in exclude]
        if not candidates:
            return None
        return candidates[int(self._rng.integers(len(candidates)))]


class AccessCounterEvictionPolicy(LruEvictionPolicy):
    """Hit-aware eviction via (modelled) GPU access counters.

    The hardware exposes per-region access counters that the stock driver
    barely uses (§2.3 / Ganguly et al. [15]).  This policy credits a block
    on every in-memory hit, halves all counters at each eviction (aging),
    and evicts the allocated block with the lowest score — approaching true
    LRU rather than "earliest allocated".
    """

    name = "access-counter"

    def __init__(self) -> None:
        super().__init__()
        self._counters: Dict[int, float] = {}

    def on_gpu_allocated(self, block_id: int) -> None:
        super().on_gpu_allocated(block_id)
        self._counters[block_id] = 1.0

    def on_fault_service(self, block_id: int) -> None:
        super().on_fault_service(block_id)
        if block_id in self._counters:
            self._counters[block_id] += 1.0

    def on_access_hit(self, block_id: int) -> None:
        if block_id in self._counters:
            self._counters[block_id] += 1.0

    def on_evicted(self, block_id: int) -> None:
        super().on_evicted(block_id)
        self._counters.pop(block_id, None)
        # Aging: older activity decays.
        for block in self._counters:
            self._counters[block] *= 0.5

    def pick_victim(self, exclude: Set[int]) -> Optional[int]:
        candidates = [b for b in self._order if b not in exclude]
        if not candidates:
            return None
        return min(candidates, key=lambda b: (self._counters.get(b, 0.0), b))


#: Registry for ``DriverConfig.eviction_policy``.
EVICTION_POLICIES = {
    "lru": LruEvictionPolicy,
    "fifo": FifoEvictionPolicy,
    "random": RandomEvictionPolicy,
    "access-counter": AccessCounterEvictionPolicy,
}


def make_eviction_policy(name: str) -> LruEvictionPolicy:
    """Instantiate a registered eviction policy by name."""
    try:
        return EVICTION_POLICIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown eviction policy {name!r}; choose from {sorted(EVICTION_POLICIES)}"
        )
