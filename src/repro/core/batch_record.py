"""Per-batch instrumentation record — the paper's modified-driver log line.

The paper instruments the UVM driver "with targeted high-precision timers
and event counters for collecting batch-level data.  Batch data is logged to
the system log at the end of each batch" (§3.1).  :class:`BatchRecord` is the
simulator's equivalent: one frozen record per serviced batch holding every
counter and timer the figures and tables consume.

Field groups map directly onto the paper's analyses:

* size/duplicate counters → Fig 8, Fig 9, Table 2 (via ``sm_fault_counts``);
* VABlock counters → Table 3, Fig 10;
* migration counters → Fig 6, Fig 7;
* component timers → Fig 7, Fig 11, Fig 13-15 (percent-of-batch tones);
* eviction counters → Fig 12, Fig 13, Fig 15b;
* prefetch counters → Fig 14, Fig 15a, Fig 16a/17a.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional

import numpy as np


@dataclass
class BatchRecord:
    """All metadata logged for one fault batch."""

    batch_id: int
    #: Simulated time servicing began/ended (µs).
    t_start: float = 0.0  # dim: us
    t_end: float = 0.0  # dim: us
    #: Arrival timestamps of the first/last fault fetched (Fig 4's per-fault
    #: buffer-arrival instrumentation).
    t_first_fault: float = 0.0  # dim: us
    t_last_fault: float = 0.0  # dim: us

    # --- size and duplicates -------------------------------------------------
    num_faults_raw: int = 0
    num_faults_unique: int = 0
    dup_same_utlb: int = 0
    dup_cross_utlb: int = 0
    #: Faults flushed (dropped) from the buffer at the closing replay.
    dropped_at_flush: int = 0
    #: Whether the worker thread slept before this batch (burst window).
    slept_before: bool = False
    #: True for hint-driven migrations (cudaMemPrefetchAsync), which go
    #: through the same per-VABlock servicing path without faults.
    hinted: bool = False

    # --- VABlocks ------------------------------------------------------------
    num_vablocks: int = 0
    #: Blocks whose compulsory DMA state was created in this batch.
    new_dma_blocks: int = 0
    #: Blocks that received a fresh GPU chunk in this batch.
    blocks_allocated: int = 0
    #: Unique faults per VABlock, parallel to first-fault block order.
    vablock_fault_counts: Optional[np.ndarray] = None

    # --- migration -----------------------------------------------------------
    pages_migrated_h2d: int = 0  # dim: count
    bytes_h2d: int = 0  # dim: bytes
    pages_populated: int = 0
    #: Pages added by the prefetcher beyond the faulted set.
    pages_prefetched: int = 0

    # --- eviction ------------------------------------------------------------
    evictions: int = 0
    pages_evicted: int = 0  # dim: count
    bytes_d2h: int = 0  # dim: bytes
    #: Evicted blocks that skipped CPU unmapping (already unmapped — the
    #: lower "levels" of Fig 13).
    evictions_unmap_free: int = 0

    # --- resilience (chaos testing, :mod:`repro.inject`) ----------------------
    #: DMA-map attempts that failed transiently and were retried.
    retries_dma: int = 0
    #: Copy-engine bursts that aborted and were retried.
    retries_transfer: int = 0
    #: Host-population ENOMEM events absorbed by reclaim + retry.
    retries_populate: int = 0
    #: Stuck-burst failovers to the sibling copy engine.
    ce_failovers: int = 0
    #: Prefetch transfers that fell back to demand-only paging.
    prefetch_fallbacks: int = 0
    #: VABlocks deferred after retry exhaustion (faults reissue later).
    blocks_deferred: int = 0
    #: Servicing raised mid-batch (fail-fast exhaustion or injected crash):
    #: the record is partial, and UVMSan skips its reconciliation checks.
    aborted: bool = False

    # --- host OS -------------------------------------------------------------
    unmap_calls: int = 0
    pages_unmapped: int = 0
    dma_mappings_created: int = 0
    radix_nodes_allocated: int = 0
    radix_slab_refills: int = 0

    # --- component timers (µs) ------------------------------------------------
    time_wake: float = 0.0
    time_fetch: float = 0.0
    time_preprocess: float = 0.0
    time_block_base: float = 0.0
    time_alloc: float = 0.0
    time_eviction: float = 0.0
    time_population: float = 0.0
    time_dma: float = 0.0
    time_unmap: float = 0.0
    time_prefetch_decide: float = 0.0
    time_migrate_prep: float = 0.0
    time_transfer_h2d: float = 0.0
    time_transfer_d2h: float = 0.0
    time_pagetable: float = 0.0
    time_replay: float = 0.0
    #: Retry overhead: wasted partial transfers, backoff waits, and stuck
    #: deadlines (zero unless :mod:`repro.inject` is active).
    time_retry_backoff: float = 0.0

    # --- per-SM origin (Table 2) ----------------------------------------------
    sm_fault_counts: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ views

    @property
    def duration(self) -> float:
        """Total batch servicing time (µs)."""
        return self.t_end - self.t_start

    @property
    def service_time(self) -> float:
        """Sum of accounted component timers (== duration for the serial
        driver; < duration only under the parallel-driver ablation where the
        clock advances by the critical path, not total work)."""
        return (
            self.time_wake
            + self.time_fetch
            + self.time_preprocess
            + self.time_block_base
            + self.time_alloc
            + self.time_eviction
            + self.time_population
            + self.time_dma
            + self.time_unmap
            + self.time_prefetch_decide
            + self.time_migrate_prep
            + self.time_transfer_h2d
            + self.time_transfer_d2h
            + self.time_pagetable
            + self.time_replay
            + self.time_retry_backoff
        )

    @property
    def transfer_fraction(self) -> float:
        """Fraction of batch time spent moving data (Fig 7)."""
        if self.duration <= 0:
            return 0.0
        return (self.time_transfer_h2d + self.time_transfer_d2h) / self.duration

    @property
    def unmap_fraction(self) -> float:
        """Fraction of batch time spent in unmap_mapping_range (Fig 11/13)."""
        if self.duration <= 0:
            return 0.0
        return self.time_unmap / self.duration

    @property
    def dma_fraction(self) -> float:
        """Fraction of batch time spent creating DMA state (Fig 14/15d)."""
        if self.duration <= 0:
            return 0.0
        return self.time_dma / self.duration

    @property
    def duplicate_count(self) -> int:
        return self.dup_same_utlb + self.dup_cross_utlb

    def to_dict(self) -> Dict:
        """JSON-serializable dict (arrays become lists)."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, np.ndarray):
                value = value.tolist()
            out[f.name] = value
        out["duration"] = self.duration
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "BatchRecord":
        data = dict(data)
        data.pop("duration", None)
        for key in ("sm_fault_counts", "vablock_fault_counts"):
            if data.get(key) is not None:
                data[key] = np.asarray(data[key], dtype=np.int32)
        return cls(**data)
