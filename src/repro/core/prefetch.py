"""The UVM tree-based density prefetcher.

"The prefetching mechanism is a type of *density prefetching*, sometimes
called *tree-based prefetching* ... The prefetcher's scope is limited to
within a single VABlock and is only reactive; the prefetcher only flags
pages within a VABlock currently being serviced for faults up to the full
VABlock." (paper §5.2)

Algorithm (as described in [2, 14, 21]):

1. Faulted 4 KiB pages are upgraded to their 64 KiB regions (§2.2).
2. A binary tree is (logically) built over the block's 32 regions.  For each
   internal node, bottom-up, if the fraction of the node's pages that are
   resident-or-being-migrated reaches the density threshold (default ½), the
   *entire subtree* is flagged for migration.
3. The root node being dense flags the full 2 MiB VABlock.

The prefetcher never crosses a VABlock boundary — which is why it cannot
eliminate the compulsory DMA-state batches or preempt CPU unmapping in new
blocks (§5.2, §6).  The ``scope_blocks`` ablation (§6 "increasing the
prefetching scope") optionally mirrors a dense block's migration into its
neighbour blocks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import numpy as np

from ..units import PAGES_PER_REGION, PAGES_PER_VABLOCK, REGIONS_PER_VABLOCK
from .residency import region_upgrade
from .vablock import VABlockState


class PrefetcherBase:
    """Interface for within-block prefetch policies.

    ``expand(block, faulted_pages)`` returns extra *global* page ids to
    migrate along with the faults — always confined to the block's valid
    pages (the UVM prefetcher's hard scope limit, §5.2), except through the
    explicit ``scope_blocks`` ablation.
    """

    name = "base"

    def __init__(self, scope_blocks: int = 1) -> None:
        self.scope_blocks = scope_blocks

    def expand(self, block: VABlockState, faulted_pages: Iterable[int]) -> Set[int]:
        raise NotImplementedError

    def neighbour_blocks(self, block_id: int) -> List[int]:
        """Blocks covered by an enlarged prefetch scope (ablation only)."""
        if self.scope_blocks <= 1:
            return []
        return [block_id + delta for delta in range(1, self.scope_blocks)]


class DensityPrefetcher(PrefetcherBase):
    """Reactive within-block tree prefetcher (the paper's driver)."""

    name = "density-tree"

    def __init__(self, threshold: float = 0.5, scope_blocks: int = 1) -> None:
        super().__init__(scope_blocks)
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold
        #: Tree levels above the region leaves: 32 regions → 6 levels.
        self._levels = int(np.log2(REGIONS_PER_VABLOCK)) + 1
        #: Per-block valid-page masks, keyed by block id and invalidated by
        #: valid-page count (blocks are never deallocated and their valid
        #: sets only grow, so a length match proves the mask is current).
        self._valid_masks: Dict[int, Tuple[int, np.ndarray]] = {}

    def _valid_mask(self, block: VABlockState, first: int) -> np.ndarray:
        cached = self._valid_masks.get(block.block_id)
        num_valid = len(block.valid_pages)
        if cached is not None and cached[0] == num_valid:
            return cached[1]
        mask = np.zeros(PAGES_PER_VABLOCK, dtype=bool)
        mask[
            np.fromiter(block.valid_pages, dtype=np.int64, count=num_valid) - first
        ] = True
        self._valid_masks[block.block_id] = (num_valid, mask)
        return mask

    def expand(self, block: VABlockState, faulted_pages: Iterable[int]) -> Set[int]:
        """Pages to migrate for ``block`` beyond the faulted set.

        Returns *global* page ids: the 64 KiB upgrades plus every page of
        each subtree whose density crosses the threshold, intersected with
        the block's valid pages and minus already-resident pages and the
        faulted pages themselves.
        """
        first = block.first_page
        faulted = set(faulted_pages)
        if not faulted:
            return set()

        # Density counts migration *evidence*: resident pages, faulted
        # pages, and their unconditional 64 KiB upgrades (§2.2) — those
        # pages genuinely migrate.  Promoted subtrees do NOT feed back into
        # density: with strictly-greater comparison a promoted child is
        # exactly half its parent, so self-feedback would cascade a single
        # fault in an empty block to the full 2 MiB.
        density_mask = np.zeros(PAGES_PER_VABLOCK, dtype=bool)
        resident = block.resident_pages
        res_off = None
        if resident:
            res_off = (
                np.fromiter(resident, dtype=np.int64, count=len(resident)) - first
            )
            density_mask[res_off] = True
        fault_off = np.fromiter(faulted, dtype=np.int64, count=len(faulted)) - first
        # Unconditional 64 KiB upgrade (§2.2), vectorized: every region
        # containing a faulted page contributes all of its pages.
        region_bases = np.unique(fault_off - fault_off % PAGES_PER_REGION)
        density_mask[
            (region_bases[:, None] + np.arange(PAGES_PER_REGION)).ravel()
        ] = True

        # Valid mask (tail blocks are partial), cached per block.
        valid = self._valid_mask(block, first)
        density_mask &= valid

        fetch = density_mask.copy()

        # Bottom-up density test over power-of-two page spans:
        # 16 (region) → 32 → 64 → 128 → 256 → 512 pages.
        span = PAGES_PER_REGION
        while span <= PAGES_PER_VABLOCK:
            nodes = PAGES_PER_VABLOCK // span
            occ_nodes = density_mask.reshape(nodes, span)
            valid_nodes = valid.reshape(nodes, span)
            valid_counts = valid_nodes.sum(axis=1)
            occ_counts = (occ_nodes & valid_nodes).sum(axis=1)
            with np.errstate(divide="ignore", invalid="ignore"):
                density = np.where(valid_counts > 0, occ_counts / np.maximum(valid_counts, 1), 0.0)
            dense = density > self.threshold
            # Flag entire dense subtrees for fetching.
            expand_mask = np.repeat(dense, span) & valid
            fetch |= expand_mask
            span *= 2

        # Exclude already-resident pages and the faulted set itself.
        if res_off is not None:
            fetch[res_off] = False
        fetch[fault_off] = False
        return set((first + np.nonzero(fetch)[0]).tolist())


class RegionOnlyPrefetcher(PrefetcherBase):
    """Only the compulsory 4 KiB → 64 KiB upgrade (§2.2), no tree growth.

    Isolates how much of prefetching's win comes from the page-size upgrade
    alone versus the density tree above it.
    """

    name = "region-only"

    def expand(self, block: VABlockState, faulted_pages: Iterable[int]) -> Set[int]:
        faulted = set(faulted_pages)
        if not faulted:
            return set()
        first = block.first_page
        upgraded = region_upgrade([p - first for p in faulted])
        out = set()
        for off in upgraded:
            page = first + off
            if (
                page in block.valid_pages
                and page not in block.resident_pages
                and page not in faulted
            ):
                out.add(page)
        return out


class SequentialPrefetcher(PrefetcherBase):
    """Classic next-N sequential prefetch after each faulted page.

    A common CPU-style policy; it has no notion of density, so sparse
    patterns drag in useless pages and dense patterns under-fetch relative
    to the tree (the comparison the ablation bench makes).
    """

    name = "sequential"

    def __init__(self, distance: int = 16, scope_blocks: int = 1) -> None:
        super().__init__(scope_blocks)
        if distance <= 0:
            raise ValueError("distance must be positive")
        self.distance = distance

    def expand(self, block: VABlockState, faulted_pages: Iterable[int]) -> Set[int]:
        faulted = set(faulted_pages)
        out: Set[int] = set()
        for page in faulted:
            for nxt in range(page + 1, page + 1 + self.distance):
                if (
                    nxt in block.valid_pages
                    and nxt not in block.resident_pages
                    and nxt not in faulted
                ):
                    out.add(nxt)
        return out


class FullBlockPrefetcher(PrefetcherBase):
    """Any fault pulls the entire VABlock (maximal within-scope policy)."""

    name = "full-block"

    def expand(self, block: VABlockState, faulted_pages: Iterable[int]) -> Set[int]:
        faulted = set(faulted_pages)
        if not faulted:
            return set()
        return {
            p
            for p in block.valid_pages
            if p not in block.resident_pages and p not in faulted
        }


#: Registry for ``DriverConfig.prefetch_policy``.
PREFETCH_POLICIES = {
    "density-tree": DensityPrefetcher,
    "region-only": RegionOnlyPrefetcher,
    "sequential": SequentialPrefetcher,
    "full-block": FullBlockPrefetcher,
}


def make_prefetcher(name: str, threshold: float = 0.5, scope_blocks: int = 1) -> PrefetcherBase:
    """Instantiate a registered prefetch policy by name."""
    if name not in PREFETCH_POLICIES:
        raise ValueError(
            f"unknown prefetch policy {name!r}; choose from {sorted(PREFETCH_POLICIES)}"
        )
    if name == "density-tree":
        return DensityPrefetcher(threshold=threshold, scope_blocks=scope_blocks)
    return PREFETCH_POLICIES[name](scope_blocks=scope_blocks)
