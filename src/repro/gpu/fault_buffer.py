"""The hardware GPU fault buffer.

The GMMU writes fault information into a circular array on the device,
configured and managed by the UVM driver (paper §2.1).  The driver fetches
entries host-side in batches; a *replay* is preceded by a buffer flush that
drops every un-fetched entry — "only faults that still need to be serviced
will be reissued" (§4.2).  Faults arriving while the buffer is full are
dropped by hardware and likewise reissue after the next replay.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from .fault import Fault


class FaultBuffer:
    """Bounded FIFO of :class:`Fault` entries with drop-on-overflow.

    The lifetime counters satisfy the conservation identity UVMSan checks
    on every operation::

        total_pushed + total_injected ==
            total_fetched + total_flush_dropped
            + total_injector_dropped + len(buffer)

    Hardware overflow drops never enter the buffer, so they appear in no
    term.  The two injection terms exist only under chaos testing
    (:mod:`repro.inject`): ``total_injector_dropped`` counts arrivals the
    injector discarded as if the buffer were full (they *are* counted in
    ``total_pushed`` — the GMMU wrote them, the injected storm ate them),
    and ``total_injected`` counts spurious duplicate entries the injector
    appended that no GMMU write produced.
    """

    __slots__ = (
        "capacity",
        "_entries",
        "total_pushed",
        "total_fetched",
        "total_overflow_dropped",
        "total_flush_dropped",
        "total_injected",
        "total_injector_dropped",
        "_san",
        "_inj",
    )

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: Deque[Fault] = deque()
        self.total_pushed = 0
        self.total_fetched = 0
        self.total_overflow_dropped = 0
        self.total_flush_dropped = 0
        self.total_injected = 0
        self.total_injector_dropped = 0
        #: Attached UVMSan checker, or None (the common, zero-cost case).
        self._san = None
        #: Attached fault injector, or None (the common, zero-cost case).
        self._inj = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def attach_sanitizer(self, sanitizer) -> None:
        """Check occupancy/conservation invariants after every operation."""
        self._san = sanitizer

    def attach_injector(self, injector) -> None:
        """Enable the ``fault_buffer.*`` injection sites on this buffer."""
        self._inj = injector

    def push(self, fault: Fault) -> bool:
        """Append a fault; False (dropped) when the buffer is full."""
        if self.full:
            self.total_overflow_dropped += 1
            return False
        inj = self._inj
        if inj is not None and inj.fire("fault_buffer.overflow"):
            # Forced overflow storm: the GMMU wrote the fault but the
            # (injected) storm dropped it before the driver could see it.
            # The caller observes exactly a hardware drop: the access
            # re-demands after the next replay.
            self.total_pushed += 1
            self.total_injector_dropped += 1
            if self._san is not None:
                self._san.on_fault_buffer(self)
            return False
        self._entries.append(fault)
        self.total_pushed += 1
        if inj is not None and not self.full and inj.fire("fault_buffer.duplicate"):
            # Spurious duplicate entry (§4.2's wakeup duplicates, forced):
            # same page/warp, written twice.
            self._entries.append(
                Fault(
                    fault.page,
                    fault.access,
                    fault.sm_id,
                    fault.utlb_id,
                    fault.warp_uid,
                    fault.timestamp,
                )
            )
            self.total_injected += 1
        if self._san is not None:
            self._san.on_fault_buffer(self)
        return True

    def fetch(self, max_n: int) -> List[Fault]:
        """Driver-side read of up to ``max_n`` oldest entries (consumed)."""
        n = min(max_n, len(self._entries))
        entries = self._entries
        fetched = [entries.popleft() for _ in range(n)]
        self.total_fetched += n
        if self._san is not None:
            self._san.on_fault_buffer(self)
        return fetched

    def flush(self) -> List[Fault]:
        """Drop every remaining entry (pre-replay flush); returns them so the
        engine can re-demand non-prefetch accesses."""
        dropped = list(self._entries)
        self._entries.clear()
        self.total_flush_dropped += len(dropped)
        if self._san is not None:
            self._san.on_fault_buffer(self)
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultBuffer({len(self._entries)}/{self.capacity})"
