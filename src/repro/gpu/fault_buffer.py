"""The hardware GPU fault buffer.

The GMMU writes fault information into a circular array on the device,
configured and managed by the UVM driver (paper §2.1).  The driver fetches
entries host-side in batches; a *replay* is preceded by a buffer flush that
drops every un-fetched entry — "only faults that still need to be serviced
will be reissued" (§4.2).  Faults arriving while the buffer is full are
dropped by hardware and likewise reissue after the next replay.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from .fault import Fault


class FaultBuffer:
    """Bounded FIFO of :class:`Fault` entries with drop-on-overflow.

    The lifetime counters satisfy the conservation identity UVMSan checks
    on every operation: ``total_pushed == total_fetched +
    total_flush_dropped + len(buffer)`` (overflow drops never enter the
    buffer, so they appear in no term).
    """

    __slots__ = (
        "capacity",
        "_entries",
        "total_pushed",
        "total_fetched",
        "total_overflow_dropped",
        "total_flush_dropped",
        "_san",
    )

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: Deque[Fault] = deque()
        self.total_pushed = 0
        self.total_fetched = 0
        self.total_overflow_dropped = 0
        self.total_flush_dropped = 0
        #: Attached UVMSan checker, or None (the common, zero-cost case).
        self._san = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def attach_sanitizer(self, sanitizer) -> None:
        """Check occupancy/conservation invariants after every operation."""
        self._san = sanitizer

    def push(self, fault: Fault) -> bool:
        """Append a fault; False (dropped) when the buffer is full."""
        if self.full:
            self.total_overflow_dropped += 1
            return False
        self._entries.append(fault)
        self.total_pushed += 1
        if self._san is not None:
            self._san.on_fault_buffer(self)
        return True

    def fetch(self, max_n: int) -> List[Fault]:
        """Driver-side read of up to ``max_n`` oldest entries (consumed)."""
        n = min(max_n, len(self._entries))
        entries = self._entries
        fetched = [entries.popleft() for _ in range(n)]
        self.total_fetched += n
        if self._san is not None:
            self._san.on_fault_buffer(self)
        return fetched

    def flush(self) -> List[Fault]:
        """Drop every remaining entry (pre-replay flush); returns them so the
        engine can re-demand non-prefetch accesses."""
        dropped = list(self._entries)
        self._entries.clear()
        self.total_flush_dropped += len(dropped)
        if self._san is not None:
            self._san.on_fault_buffer(self)
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultBuffer({len(self._entries)}/{self.capacity})"
