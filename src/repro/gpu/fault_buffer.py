"""The hardware GPU fault buffer.

The GMMU writes fault information into a circular array on the device,
configured and managed by the UVM driver (paper §2.1).  The driver fetches
entries host-side in batches; a *replay* is preceded by a buffer flush that
drops every un-fetched entry — "only faults that still need to be serviced
will be reissued" (§4.2).  Faults arriving while the buffer is full are
dropped by hardware and likewise reissue after the next replay.
"""

from __future__ import annotations

from collections import deque
from itertools import accumulate, repeat
from typing import Deque, List, Sequence, Tuple

from .fault import AccessType, Fault, FaultArrays


class FaultBuffer:  # parity: fault-buffer/object
    """Bounded FIFO of :class:`Fault` entries with drop-on-overflow.

    The lifetime counters satisfy the conservation identity UVMSan checks
    on every operation::

        total_pushed + total_injected ==
            total_fetched + total_flush_dropped
            + total_injector_dropped + len(buffer)

    Hardware overflow drops never enter the buffer, so they appear in no
    term.  The two injection terms exist only under chaos testing
    (:mod:`repro.inject`): ``total_injector_dropped`` counts arrivals the
    injector discarded as if the buffer were full (they *are* counted in
    ``total_pushed`` — the GMMU wrote them, the injected storm ate them),
    and ``total_injected`` counts spurious duplicate entries the injector
    appended that no GMMU write produced.
    """

    __slots__ = (
        "capacity",
        "_entries",
        "total_pushed",
        "total_fetched",
        "total_overflow_dropped",
        "total_flush_dropped",
        "total_injected",
        "total_injector_dropped",
        "_san",
        "_inj",
    )

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: Deque[Fault] = deque()
        self.total_pushed = 0
        self.total_fetched = 0
        self.total_overflow_dropped = 0
        self.total_flush_dropped = 0
        self.total_injected = 0
        self.total_injector_dropped = 0
        #: Attached UVMSan checker, or None (the common, zero-cost case).
        self._san = None  # snapshot: skip
        #: Attached fault injector, or None (the common, zero-cost case).
        self._inj = None  # snapshot: skip

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def attach_sanitizer(self, sanitizer) -> None:
        """Check occupancy/conservation invariants after every operation."""
        self._san = sanitizer

    def attach_injector(self, injector) -> None:
        """Enable the ``fault_buffer.*`` injection sites on this buffer."""
        self._inj = injector

    def push(self, fault: Fault) -> bool:
        """Append a fault; False (dropped) when the buffer is full."""
        if self.full:
            self.total_overflow_dropped += 1
            return False
        inj = self._inj
        if inj is not None and inj.fire("fault_buffer.overflow"):
            # Forced overflow storm: the GMMU wrote the fault but the
            # (injected) storm dropped it before the driver could see it.
            # The caller observes exactly a hardware drop: the access
            # re-demands after the next replay.
            self.total_pushed += 1
            self.total_injector_dropped += 1
            if self._san is not None:
                self._san.on_fault_buffer(self)
            return False
        self._entries.append(fault)
        self.total_pushed += 1
        if inj is not None and not self.full and inj.fire("fault_buffer.duplicate"):
            # Spurious duplicate entry (§4.2's wakeup duplicates, forced):
            # same page/warp, written twice.
            self._entries.append(
                Fault(
                    fault.page,
                    fault.access,
                    fault.sm_id,
                    fault.utlb_id,
                    fault.warp_uid,
                    fault.timestamp,
                )
            )
            self.total_injected += 1
        if self._san is not None:
            self._san.on_fault_buffer(self)
        return True

    def push_scalar(  # dim: page=page, timestamp=us
        self,
        page: int,
        access: AccessType,
        sm_id: int,
        utlb_id: int,
        warp_uid: int,
        timestamp: float,
    ) -> bool:
        """Scalar-argument form of :meth:`push` (shared GMMU entry point for
        both buffer representations)."""
        return self.push(Fault(page, access, sm_id, utlb_id, warp_uid, timestamp))

    def fetch(self, max_n: int) -> List[Fault]:
        """Driver-side read of up to ``max_n`` oldest entries (consumed)."""
        n = min(max_n, len(self._entries))
        entries = self._entries
        fetched = [entries.popleft() for _ in range(n)]
        self.total_fetched += n
        if self._san is not None:
            self._san.on_fault_buffer(self)
        return fetched

    def flush(self) -> List[Fault]:
        """Drop every remaining entry (pre-replay flush); returns them so the
        engine can re-demand non-prefetch accesses."""
        dropped = list(self._entries)
        self._entries.clear()
        self.total_flush_dropped += len(dropped)
        if self._san is not None:
            self._san.on_fault_buffer(self)
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultBuffer({len(self._entries)}/{self.capacity})"


class SoaFaultBuffer:  # parity: fault-buffer/soa
    """Structure-of-arrays drop-in for :class:`FaultBuffer` (``REPRO_SOA``).

    Entries live in a :class:`FaultArrays` (flat interleaved record list plus
    a timestamp column) instead of a deque of :class:`Fault` objects, so the
    GMMU write path is plain list appends with no per-fault allocation — and
    a pre-validated burst is a single ``list.extend`` — while the driver's
    fetch hands whole columns to the vectorized batch assembler.  Every observable contract of
    the scalar buffer is preserved bit-for-bit: the lifetime counters and
    their conservation identity, the drop-on-overflow rule, the two chaos
    injection sites (``fault_buffer.overflow`` / ``fault_buffer.duplicate``)
    firing at the same decision points in the same order, and the UVMSan
    callback points.
    """

    __slots__ = (
        "capacity",
        "_entries",
        "total_pushed",
        "total_fetched",
        "total_overflow_dropped",
        "total_flush_dropped",
        "total_injected",
        "total_injector_dropped",
        "_san",
        "_inj",
    )

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries = FaultArrays()
        self.total_pushed = 0
        self.total_fetched = 0
        self.total_overflow_dropped = 0
        self.total_flush_dropped = 0
        self.total_injected = 0
        self.total_injector_dropped = 0
        self._san = None  # snapshot: skip
        self._inj = None  # snapshot: skip

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def attach_sanitizer(self, sanitizer) -> None:
        """Check occupancy/conservation invariants after every operation."""
        self._san = sanitizer

    def attach_injector(self, injector) -> None:
        """Enable the ``fault_buffer.*`` injection sites on this buffer."""
        self._inj = injector

    def push(self, fault: Fault) -> bool:
        """Object form kept for representation-agnostic callers (tests,
        trace replay); the hot path uses :meth:`push_scalar`."""
        return self.push_scalar(
            fault.page,
            fault.access,
            fault.sm_id,
            fault.utlb_id,
            fault.warp_uid,
            fault.timestamp,
        )

    def push_scalar(  # dim: page=page, timestamp=us
        self,
        page: int,
        access: AccessType,
        sm_id: int,
        utlb_id: int,
        warp_uid: int,
        timestamp: float,
    ) -> bool:
        """Append a fault; False (dropped) when the buffer is full."""
        entries = self._entries
        if len(entries) >= self.capacity:
            self.total_overflow_dropped += 1
            return False
        inj = self._inj
        if inj is not None and inj.fire("fault_buffer.overflow"):
            # Forced overflow storm — see FaultBuffer.push for semantics.
            self.total_pushed += 1
            self.total_injector_dropped += 1
            if self._san is not None:
                self._san.on_fault_buffer(self)
            return False
        entries.append(page, access, sm_id, utlb_id, warp_uid, timestamp)
        self.total_pushed += 1
        if (
            inj is not None
            and len(entries) < self.capacity
            and inj.fire("fault_buffer.duplicate")
        ):
            # Spurious duplicate entry (§4.2's wakeup duplicates, forced).
            entries.append(page, access, sm_id, utlb_id, warp_uid, timestamp)
            self.total_injected += 1
        if self._san is not None:
            self._san.on_fault_buffer(self)
        return True

    def extend_bulk(
        self,
        events: Sequence,
        t0: float,
        interval: float,  # dim: us
    ) -> float:
        """Append a pre-validated burst of events whose timestamps advance by
        ``interval`` per entry, starting at ``t0``.  ``events`` is flat
        interleaved — ``(sm_id, utlb_id, page, access, warp_uid)`` five-tuples
        concatenated into one list, the exact internal layout of
        :class:`FaultArrays` — so the burst appends with a single
        ``list.extend`` and no transpose at all.  Returns the time after the
        last append.

        Only legal when the caller has proven no overflow is possible and no
        injector is attached (the engine's SoA issuance window checks both);
        timestamps come from ``itertools.accumulate``, which performs the
        same left-to-right repeated additions as the scalar ``t += interval``
        loop — bit-identical floats, C-speed.
        """
        assert self._inj is None
        t = t0
        n = len(events) // 5
        if n:
            # The buffer's storage shares the event layout, so the whole
            # burst lands with one list.extend.
            entries = self._entries
            entries.flat.extend(events)
            timestamps = entries.timestamps
            timestamps.extend(accumulate(repeat(interval, n - 1), initial=t0))
            t = timestamps[-1] + interval
        self.total_pushed += n
        if self._san is not None:
            self._san.on_fault_buffer(self)
        return t

    def fetch(self, max_n: int) -> FaultArrays:
        """Driver-side read of up to ``max_n`` oldest entries (consumed)."""
        n = min(max_n, len(self._entries))
        fetched = self._entries.take_front(n)
        self.total_fetched += n
        if self._san is not None:
            self._san.on_fault_buffer(self)
        return fetched

    def flush(self) -> FaultArrays:
        """Drop every remaining entry (pre-replay flush); returns them so the
        engine can re-demand non-prefetch accesses."""
        dropped = self._entries.drain()
        self.total_flush_dropped += len(dropped)
        if self._san is not None:
            self._san.on_fault_buffer(self)
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SoaFaultBuffer({len(self._entries)}/{self.capacity})"
