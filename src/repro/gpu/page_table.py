"""GPU page table: which managed pages are device-resident.

The driver updates the GPU's page tables after migrating data and before
issuing the fault replay (paper §2.1).  The simulator keeps the authoritative
resident set here as a plain ``set`` of global page ids — the hot structure
warps consult when deciding whether an access faults — while
:class:`repro.core.vablock.VABlockState` keeps the per-block masks the driver
reasons about.
"""

from __future__ import annotations

from typing import Iterable, Set


class GpuPageTable:
    """Set-semantics GPU page table with mapping counters."""

    __slots__ = ("resident", "total_mapped", "total_unmapped")

    def __init__(self) -> None:
        #: Global page ids currently mapped in device memory.
        self.resident: Set[int] = set()
        self.total_mapped = 0
        self.total_unmapped = 0

    def is_resident(self, page: int) -> bool:
        return page in self.resident

    def map_pages(self, pages: Iterable[int]) -> int:
        """Install mappings; returns the number of newly-mapped pages."""
        before = len(self.resident)
        self.resident.update(pages)
        added = len(self.resident) - before
        self.total_mapped += added
        return added

    def unmap_pages(self, pages: Iterable[int]) -> int:
        """Remove mappings (eviction path); returns pages actually removed."""
        resident = self.resident
        removed = 0
        for page in pages:
            if page in resident:
                resident.discard(page)
                removed += 1
        self.total_unmapped += removed
        return removed

    def __len__(self) -> int:
        return len(self.resident)
