"""Aggregate GPU device: SMs, µTLBs, fault path, memory chunks.

Bundles every device-side component behind one object, including the
physical-memory chunk allocator: UVM "tracks all physical GPU memory
allocations from the nvidia resource manager" and both allocates and evicts
at the 2 MiB VABlock granularity (paper §2.2), so device memory is modelled
as a pool of 2 MiB chunks.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import GpuConfig
from ..errors import SimulationError
from ..units import VABLOCK_SIZE
from .copy_engine import CopyEngine
from .fault_buffer import FaultBuffer, SoaFaultBuffer
from .gmmu import Gmmu
from .page_table import GpuPageTable
from .sm import StreamingMultiprocessor
from .utlb import UTlb


class ChunkAllocator:
    """Fixed pool of 2 MiB physical chunks backing VABlocks."""

    __slots__ = ("total_chunks", "_free", "total_allocs", "total_frees")

    def __init__(self, total_chunks: int) -> None:
        self.total_chunks = total_chunks
        self._free: List[int] = list(range(total_chunks - 1, -1, -1))
        self.total_allocs = 0
        self.total_frees = 0

    @property
    def free_chunks(self) -> int:
        return len(self._free)

    @property
    def used_chunks(self) -> int:
        return self.total_chunks - len(self._free)

    def allocate(self) -> Optional[int]:
        """Take a free chunk id, or None when memory is fully allocated."""
        if not self._free:
            return None
        self.total_allocs += 1
        return self._free.pop()

    def free(self, chunk: int) -> None:
        if not 0 <= chunk < self.total_chunks:
            raise SimulationError(f"freeing invalid chunk id {chunk}")
        if chunk in self._free:  # pragma: no cover - internal guard
            raise SimulationError(f"double free of chunk {chunk}")
        self._free.append(chunk)
        self.total_frees += 1


class GpuDevice:
    """The simulated GPU (paper testbed: Titan V, 80 SMs, 12 GB HBM2)."""

    def __init__(
        self,
        config: GpuConfig,
        copy_bandwidth_bytes_per_usec: float,
        copy_latency_usec: float,
        soa_fault_buffer: bool = False,
    ) -> None:
        config.validate()
        self.config = config
        self.utlbs = [
            UTlb(i, config.utlb_outstanding_limit) for i in range(config.num_utlbs)
        ]
        self.sms = [
            StreamingMultiprocessor(
                sm_id=i,
                utlb_id=config.utlb_of_sm(i),
                rate_limit=config.sm_fault_rate_limit,
                occupancy_limit=config.max_warps_per_sm,
            )
            for i in range(config.num_sms)
        ]
        buffer_cls = SoaFaultBuffer if soa_fault_buffer else FaultBuffer
        self.fault_buffer = buffer_cls(config.fault_buffer_entries)
        self.gmmu = Gmmu(self.fault_buffer, config.sms_per_utlb)
        self.page_table = GpuPageTable()
        #: The device ships a pair of copy engines; the driver uses the
        #: primary (``copy_engine``) and fails over to the sibling when a
        #: burst hangs past the phase deadline (chaos testing's ``ce.stuck``).
        self.copy_engines = [
            CopyEngine(
                copy_bandwidth_bytes_per_usec, copy_latency_usec, engine_id=i
            )
            for i in range(2)
        ]
        self.copy_engine = self.copy_engines[0]
        self.chunks = ChunkAllocator(config.memory_bytes // VABLOCK_SIZE)

    def sibling_of(self, ce: CopyEngine) -> CopyEngine:
        """The other copy engine of the failover pair."""
        return self.copy_engines[1 - ce.engine_id]

    def utlb_for_sm(self, sm_id: int) -> UTlb:
        return self.utlbs[self.config.utlb_of_sm(sm_id)]

    def replay_all(self) -> None:
        """Fault replay broadcast: clear waiting state on every µTLB."""
        for utlb in self.utlbs:
            utlb.replay()

    @property
    def idle(self) -> bool:
        """No warp active or queued on any SM."""
        return all(sm.idle for sm in self.sms)

    def reset_scheduling(self) -> None:
        """Drop all warp state (between kernel launches)."""
        for sm in self.sms:
            sm.active.clear()
            sm.queued.clear()
            sm.budget = sm.rate_limit
            sm.compute_backlog_usec = 0.0
