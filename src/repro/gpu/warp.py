"""Warp execution model with register-scoreboard semantics.

The paper (§3.2, Listings 1-2) reverse-engineers three fault-generation
behaviours that this module encodes:

1. **Loads are non-blocking.**  A warp can issue one or more reads that fault
   without stalling — the exact behaviour of non-faulting CUDA accesses.
2. **The register scoreboard serializes dependent stores.**  The SASS of
   ``c[i] = a[i] + b[i]`` stalls at the ``FADD`` on the two load registers, so
   *no write can execute until its prerequisite reads are fulfilled*, even
   though the store address is known upfront.  A faulting warp therefore
   needs at least two full fault rounds per statement.
3. **Prefetch instructions escape both limits.**  ``prefetch.global.L2``
   does not use the scoreboard, so it bypasses the µTLB outstanding cap and
   the SM fault-rate throttle; a single warp can fill an entire 256-fault
   batch (Fig 5).  Dropped prefetch faults are never reissued (hints).

A workload is compiled into :class:`WarpProgram` s — ordered lists of
:class:`Phase` s, each a (reads, writes, prefetches) triple of page ids plus
a compute cost.  :class:`WarpState` executes a program against the evolving
GPU residency: within a phase all reads issue concurrently, writes wait for
the phase's reads, and the warp only advances to the next phase when the
current phase's pages are resident.

One ``WarpProgram`` models one *faulting context* (a warp, or a thread block
whose warps fault in lockstep); the paper's per-SM and per-µTLB statistics
only depend on that granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .fault import AccessType

_STAGE_READS = 0
_STAGE_WRITES = 1


@dataclass(frozen=True)
class Phase:
    """One dependency-separated group of memory operations.

    ``reads`` may contain duplicate page ids: distinct lanes touching the
    same page issue distinct faults (the paper's type-1 duplicates, §4.2).
    """

    reads: Tuple[int, ...] = ()
    writes: Tuple[int, ...] = ()
    prefetches: Tuple[int, ...] = ()
    #: GPU compute time (µs) charged when the phase completes.
    compute_usec: float = 0.0

    @staticmethod
    def of(
        reads: Iterable[int] = (),
        writes: Iterable[int] = (),
        prefetches: Iterable[int] = (),
        compute_usec: float = 0.0,
    ) -> "Phase":
        return Phase(tuple(reads), tuple(writes), tuple(prefetches), compute_usec)

    @cached_property
    def pages(self) -> FrozenSet[int]:
        """All distinct pages the phase touches (excluding prefetch hints).

        Cached: ``Phase`` is frozen, so the set is computed once instead of
        being rebuilt on every property access in the engine's hot loops
        (``cached_property`` stores into the instance ``__dict__``, which
        bypasses the frozen ``__setattr__`` and stays out of field-based
        equality/hashing).
        """
        return frozenset(self.reads) | frozenset(self.writes)


@dataclass
class WarpProgram:
    """An ordered list of phases executed by one faulting context."""

    phases: Tuple[Phase, ...]
    #: Optional label for traces/debugging (e.g. ``"block(3,1)"``).
    label: str = ""

    def __post_init__(self) -> None:
        self.phases = tuple(self.phases)

    @property
    def total_accesses(self) -> int:
        return sum(len(p.reads) + len(p.writes) for p in self.phases)

    @cached_property
    def touched_pages(self) -> FrozenSet[int]:
        """Union of all phase footprints; cached — programs are immutable
        once built (``__post_init__`` freezes ``phases`` into a tuple)."""
        return frozenset().union(*(p.pages for p in self.phases))


@dataclass
class KernelLaunch:
    """A set of warp programs submitted to the device as one kernel."""

    name: str
    programs: List[WarpProgram]
    #: Maximum concurrently-active programs per SM (occupancy).  ``None``
    #: uses the device limit.
    occupancy: Optional[int] = None

    @property
    def total_accesses(self) -> int:
        return sum(p.total_accesses for p in self.programs)

    @cached_property
    def touched_pages(self) -> FrozenSet[int]:
        """Union of all program footprints; cached — launches are built once
        by the workload generators and never mutated afterwards."""
        return frozenset().union(*(p.touched_pages for p in self.programs))


@dataclass
class AdvanceResult:
    """Outcome of :meth:`WarpState.advance`."""

    #: Compute time accrued by phases completed during this advance.
    compute_usec: float = 0.0
    #: Pages the warp is now blocked on (engine registers waiters on these).
    new_waits: Set[int] = field(default_factory=set)
    #: Prefetch page occurrences emitted while advancing (issue immediately,
    #: bypassing all caps; never gate progress).
    prefetches: List[int] = field(default_factory=list)
    #: True when the program ran to completion.
    finished: bool = False
    #: Distinct resident pages the advance touched without faulting
    #: (in-memory hits).  Only collected when ``WarpState.track_hits`` is
    #: set — the real driver cannot see these (§5.4), but access-counter
    #: eviction policies can.
    hit_pages: Set[int] = field(default_factory=set)


class WarpState:
    """Runtime state of one :class:`WarpProgram` on an SM.

    The engine drives a warp through this protocol:

    * :meth:`advance` — run forward until blocked or finished; returns pages
      to wait on plus any prefetch demands.
    * :meth:`take_issuable` — pop fault occurrences to issue this round,
      bounded by the SM throttle budget and µTLB capacity.
    * :meth:`on_pages_resident` — notification from the driver; when it
      returns True the warp is unblocked and must be advanced again.
    * :meth:`requeue` — re-demand an occurrence whose fault was dropped by
      the replay flush (the µTLB reissues still-needed faults, §4.2).
    """

    __slots__ = (
        "program",
        "uid",
        "sm_id",
        "_phase_idx",
        "_stage",
        "_prefetch_emitted",
        "missing",
        "_unissued",
        "_unissued_head",
        "finished",
        "faults_issued",
        "ready_at",
        "track_hits",
        "_stage_satisfied",
    )

    def __init__(self, program: WarpProgram, uid: int, sm_id: int) -> None:
        self.program = program
        self.uid = uid
        self.sm_id = sm_id
        self._phase_idx = 0
        self._stage = _STAGE_READS
        self._prefetch_emitted = False
        #: Distinct pages of the current stage not yet GPU-resident.
        self.missing: Set[int] = set()
        #: Pending fault occurrences ``(page, access)`` awaiting issue.
        self._unissued: List[Tuple[int, AccessType]] = []
        self._unissued_head = 0
        self.finished = False
        #: Total faults this warp has issued (instrumentation).
        self.faults_issued = 0
        #: Simulated time before which this warp is busy computing completed
        #: phases and issues no new faults.  Compute between fault rounds is
        #: what desynchronizes SMs in real kernels: at any instant only a
        #: fraction of warps is fault-ready, which is why application batch
        #: sizes sit far below the synthetic ceiling in Table 2.
        self.ready_at = 0.0
        #: When True, :meth:`advance` collects in-memory hit pages (for
        #: access-counter eviction policies).  Off by default: hits are
        #: invisible to the real driver and collecting them costs time.
        self.track_hits = False
        #: Set when the blocked stage was fully satisfied by driver
        #: notifications: the stage's loads retired at the replay, so the
        #: next advance must NOT re-check residency (pages may have been
        #: evicted again since — re-checking would livelock a working set
        #: larger than device memory).
        self._stage_satisfied = False

    # ------------------------------------------------------------------ api

    @property
    def blocked(self) -> bool:
        """True while the current stage waits on non-resident pages."""
        return bool(self.missing)

    @property
    def has_issuable(self) -> bool:
        return self._unissued_head < len(self._unissued)

    def advance(self, resident: Set[int]) -> AdvanceResult:
        """Run the program forward until it blocks on a fault or finishes.

        ``resident`` is the set of GPU-resident page ids (the GPU page
        table's view).  Must only be called when :attr:`blocked` is False.
        """
        result = AdvanceResult()
        if self.finished:
            result.finished = True
            return result
        track_hits = self.track_hits
        phases = self.program.phases
        while self._phase_idx < len(phases):
            phase = phases[self._phase_idx]
            if self._stage == _STAGE_READS:
                if not self._prefetch_emitted and phase.prefetches:
                    result.prefetches.extend(phase.prefetches)
                    self._prefetch_emitted = True
                if self._stage_satisfied:
                    # The stage's loads retired at the replay that made its
                    # last page resident; never re-check (eviction may have
                    # already reclaimed the pages — consumption is final).
                    self._stage_satisfied = False
                else:
                    if track_hits:
                        result.hit_pages.update(p for p in phase.reads if p in resident)
                    if self._block_on(phase.reads, AccessType.READ, resident):
                        result.new_waits = set(self.missing)
                        return result
                self._stage = _STAGE_WRITES
            if self._stage == _STAGE_WRITES:
                if self._stage_satisfied:
                    self._stage_satisfied = False
                else:
                    if track_hits:
                        result.hit_pages.update(p for p in phase.writes if p in resident)
                    if self._block_on(phase.writes, AccessType.WRITE, resident):
                        result.new_waits = set(self.missing)
                        return result
                result.compute_usec += phase.compute_usec
                self._phase_idx += 1
                self._stage = _STAGE_READS
                self._prefetch_emitted = False
        self.finished = True
        result.finished = True
        return result

    def peek_page(self) -> Optional[int]:
        """Page of the next issuable occurrence (skipping satisfied ones),
        or None.

        Pure: issue state is only consumed by :meth:`take_issuable`.  An
        earlier version advanced ``_unissued_head`` past satisfied
        occurrences and reset the queue when it ran off the end — so a peek
        on a still-blocked warp could clear the queue out from under a
        concurrent :meth:`requeue` (a re-demanded occurrence landed in a
        freshly-reset list, or was skipped by the advanced head).  Peeking
        must never change which occurrences a later take/requeue sees.
        """
        unissued = self._unissued
        missing = self.missing
        for i in range(self._unissued_head, len(unissued)):
            page = unissued[i][0]
            if page in missing:
                return page
        return None

    def take_issuable(self, max_n: int) -> List[Tuple[int, AccessType]]:
        """Pop up to ``max_n`` occurrences whose pages are still missing.

        Occurrences whose page became resident before they issued are
        silently skipped — after a replay they would simply hit in the µTLB.
        """
        taken: List[Tuple[int, AccessType]] = []
        unissued = self._unissued
        head = self._unissued_head
        missing = self.missing
        n = len(unissued)
        while head < n and len(taken) < max_n:
            occ = unissued[head]
            head += 1
            if occ[0] in missing:
                taken.append(occ)
        self._unissued_head = head
        if head >= n:
            # Compact the consumed prefix.
            self._unissued = []
            self._unissued_head = 0
        self.faults_issued += len(taken)
        return taken

    def on_pages_resident(self, pages: Iterable[int]) -> bool:
        """Driver notification; True when the warp becomes unblocked.

        Unblocking marks the stage *satisfied*: its accesses retired when
        their pages were (momentarily) resident, so a later advance must not
        re-demand them even if eviction has reclaimed the pages since.
        """
        missing = self.missing
        had_missing = bool(missing)
        for page in pages:
            missing.discard(page)
        if had_missing and not missing:
            self._stage_satisfied = True
            return True
        return False

    def requeue(self, page: int, access: AccessType) -> None:
        """Re-demand an occurrence whose fault was flushed before service."""
        if access == AccessType.PREFETCH:
            return  # prefetches are hints; dropped means forgotten
        if page in self.missing:
            self._unissued.append((page, access))

    # ------------------------------------------------------------ internals

    def _block_on(
        self,
        pages: Sequence[int],
        access: AccessType,
        resident: Set[int],
    ) -> bool:
        """Compute the stage's missing set; True if the warp must block."""
        if not pages:
            return False
        missing = {p for p in pages if p not in resident}
        if not missing:
            return False
        self.missing = missing
        self._unissued = [(p, access) for p in pages if p in missing]
        self._unissued_head = 0
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WarpState(uid={self.uid}, sm={self.sm_id}, "
            f"phase={self._phase_idx}/{len(self.program.phases)}, "
            f"missing={len(self.missing)}, finished={self.finished})"
        )
