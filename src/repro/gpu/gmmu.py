"""GPU memory management unit: fault routing and host interrupt.

The GMMU receives misses from the µTLBs, writes the fault information into
the GPU fault buffer, and sends a hardware interrupt over the interconnect to
alert the host UVM driver (paper §2.1-2.2).  Batching lets the driver ignore
most interrupts, so the model only tracks a level-triggered pending flag.
"""

from __future__ import annotations

from typing import Optional

from .fault import AccessType, Fault
from .fault_buffer import FaultBuffer


class Gmmu:
    """Routes faults into the buffer and latches the host interrupt."""

    __slots__ = ("buffer", "sms_per_utlb", "interrupt_pending", "first_arrival")

    def __init__(self, buffer: FaultBuffer, sms_per_utlb: int) -> None:
        self.buffer = buffer
        self.sms_per_utlb = sms_per_utlb
        self.interrupt_pending = False
        #: Arrival time of the oldest un-fetched fault (drives wake latency).
        self.first_arrival: Optional[float] = None

    def deliver(
        self,
        page: int,
        access: AccessType,
        sm_id: int,
        warp_uid: int,
        timestamp: float,
    ) -> Optional[Fault]:
        """Write one fault into the buffer; None if hardware dropped it."""
        fault = Fault(
            page=page,
            access=access,
            sm_id=sm_id,
            utlb_id=sm_id // self.sms_per_utlb,
            warp_uid=warp_uid,
            timestamp=timestamp,
        )
        if not self.buffer.push(fault):
            return None
        if not self.interrupt_pending:
            self.interrupt_pending = True
            self.first_arrival = timestamp
        return fault

    def deliver_ok(  # dim: page=page, timestamp=us
        self,
        page: int,
        access: AccessType,
        sm_id: int,
        warp_uid: int,
        timestamp: float,
    ) -> bool:
        """Allocation-free form of :meth:`deliver` used by the SoA fault
        pipeline: same buffer-write and interrupt-latch semantics, but the
        fault is written as scalars (the SoA buffer appends columns) and the
        caller only learns whether hardware accepted it."""
        if not self.buffer.push_scalar(
            page, access, sm_id, sm_id // self.sms_per_utlb, warp_uid, timestamp
        ):
            return False
        if not self.interrupt_pending:
            self.interrupt_pending = True
            self.first_arrival = timestamp
        return True

    def latch_interrupt(self, timestamp: float) -> None:  # dim: timestamp=us
        """Latch the host interrupt for a burst delivered directly into the
        buffer (the engine's bulk issuance window)."""
        if not self.interrupt_pending:
            self.interrupt_pending = True
            self.first_arrival = timestamp

    def acknowledge(self) -> None:
        """Host acknowledged the interrupt (fault fetch started)."""
        self.interrupt_pending = False
        self.first_arrival = None
