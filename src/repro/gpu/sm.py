"""Streaming multiprocessor: warp scheduling and the fault-rate throttle.

Section 3.2 infers "an additional fault rate throttling mechanism [that]
prevents a single SM from creating too many faults": several vecadd batches
contain far fewer than 56 faults despite no data dependency blocking
issuance, consistent with the far-fault proposal of Zheng et al. [39].

We model the throttle as a per-SM, per-replay-window token budget:

* when the driver *was asleep* before the window (kernel start, or the fault
  buffer drained), the interrupt + wakeup latency gives warps a long window
  and the SM can fill its µTLB's capacity — reproducing the 56-fault first
  batch of Fig 3;
* in steady state the driver turns batches around quickly, so each SM only
  lands ``sm_fault_rate_limit`` faults per window — reproducing the small
  later batches of Fig 3 and the ~``batch_size / num_sms`` per-SM ceiling of
  Table 2.

Prefetch-instruction faults bypass the throttle entirely (Fig 5).

The SM also schedules warps: at most ``occupancy`` programs are resident at
once; queued programs activate as residents finish (block scheduling).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .warp import WarpProgram, WarpState


class StreamingMultiprocessor:
    """One SM: resident warps, a launch queue, and throttle accounting."""

    __slots__ = (
        "sm_id",
        "utlb_id",
        "rate_limit",
        "occupancy_limit",
        "active",
        "queued",
        "budget",
        "total_faults",
        "compute_backlog_usec",
    )

    def __init__(
        self,
        sm_id: int,
        utlb_id: int,
        rate_limit: int,
        occupancy_limit: int,
    ) -> None:
        self.sm_id = sm_id
        self.utlb_id = utlb_id
        #: Faults this SM may issue per steady-state replay window.
        self.rate_limit = rate_limit
        #: Maximum concurrently-resident warp programs.
        self.occupancy_limit = occupancy_limit
        self.active: List[WarpState] = []
        self.queued: Deque[WarpProgram] = deque()
        #: Remaining fault budget for the current window.
        self.budget = rate_limit
        self.total_faults = 0
        #: GPU compute time accrued by completed phases (drained per round).
        self.compute_backlog_usec = 0.0

    # --------------------------------------------------------------- warps

    def enqueue(self, program: WarpProgram) -> None:
        self.queued.append(program)

    def activate_pending(self, next_uid) -> List[WarpState]:
        """Move queued programs into the active set up to the occupancy limit.

        ``next_uid`` is a callable returning a fresh warp uid.  Returns the
        newly activated warp states (the engine must `advance` them).
        """
        activated: List[WarpState] = []
        while self.queued and len(self.active) < self.occupancy_limit:
            program = self.queued.popleft()
            warp = WarpState(program, next_uid(), self.sm_id)
            self.active.append(warp)
            activated.append(warp)
        return activated

    def retire(self, warp: WarpState) -> None:
        """Remove a finished warp from the active set."""
        self.active.remove(warp)

    @property
    def idle(self) -> bool:
        return not self.active and not self.queued

    # ------------------------------------------------------------- throttle

    def new_window(self, burst: bool, burst_limit: int) -> None:
        """Start a replay window; ``burst`` when the driver was asleep."""
        self.budget = burst_limit if burst else self.rate_limit

    def consume_budget(self, count: int) -> int:
        """Take up to ``count`` tokens; returns the number granted."""
        granted = min(count, self.budget)
        self.budget -= granted
        self.total_faults += granted
        return granted

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SM(id={self.sm_id}, active={len(self.active)}, "
            f"queued={len(self.queued)}, budget={self.budget})"
        )
