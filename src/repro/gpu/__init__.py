"""GPU-side substrate: fault generation hardware model.

Models the device half of Figure 2 of the paper: SMs whose warps issue
memory accesses with register-scoreboard semantics, per-µTLB outstanding
fault caps, the per-SM fault-rate throttle, the GMMU routing faults into the
circular hardware fault buffer, the GPU page table, and the copy engines.
"""

from .fault import AccessType, Fault
from .warp import Phase, WarpProgram, WarpState, KernelLaunch
from .utlb import UTlb
from .sm import StreamingMultiprocessor
from .fault_buffer import FaultBuffer
from .gmmu import Gmmu
from .page_table import GpuPageTable
from .copy_engine import CopyEngine
from .device import GpuDevice

__all__ = [
    "AccessType",
    "Fault",
    "Phase",
    "WarpProgram",
    "WarpState",
    "KernelLaunch",
    "UTlb",
    "StreamingMultiprocessor",
    "FaultBuffer",
    "Gmmu",
    "GpuPageTable",
    "CopyEngine",
    "GpuDevice",
]
