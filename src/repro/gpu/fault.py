"""GPU page-fault records.

A :class:`Fault` is the unit written by the GMMU into the hardware fault
buffer (paper §2.1): the faulting page, the access type, and the origin SM /
µTLB, plus the simulated arrival timestamp the paper's per-fault
instrumentation records (Fig 4).
"""

from __future__ import annotations

import enum


class AccessType(enum.IntEnum):
    """Kind of access that missed translation.

    ``PREFETCH`` models PTX ``prefetch.global.L2`` instructions (§3.2,
    Fig 5): they fault like loads but bypass the register scoreboard, the
    µTLB outstanding cap, and the SM rate throttle, and are *not* reissued if
    dropped (prefetches are hints).
    """

    READ = 0
    WRITE = 1
    PREFETCH = 2


class Fault:
    """One entry in the GPU fault buffer.

    Attributes:
        page: global 4 KiB page id of the faulting address.
        access: the :class:`AccessType`.
        sm_id: originating SM (per-fault metadata logged for Table 2).
        utlb_id: µTLB that holds the miss (``sm_id // sms_per_utlb``).
        warp_uid: id of the issuing warp; duplicate classification compares
            µTLBs, not warps, but the warp is needed to re-demand dropped
            faults.
        timestamp: simulated arrival time at the fault buffer (µs), Fig 4.
    """

    __slots__ = ("page", "access", "sm_id", "utlb_id", "warp_uid", "timestamp")

    def __init__(  # dim: page=page, timestamp=us
        self,
        page: int,
        access: AccessType,
        sm_id: int,
        utlb_id: int,
        warp_uid: int,
        timestamp: float,
    ) -> None:
        self.page = page
        self.access = access
        self.sm_id = sm_id
        self.utlb_id = utlb_id
        self.warp_uid = warp_uid
        self.timestamp = timestamp

    @property
    def is_prefetch(self) -> bool:
        return self.access == AccessType.PREFETCH

    @property
    def is_write(self) -> bool:
        return self.access == AccessType.WRITE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Fault(page={self.page}, {self.access.name}, sm={self.sm_id}, "
            f"utlb={self.utlb_id}, warp={self.warp_uid}, t={self.timestamp:.2f})"
        )
