"""GPU page-fault records.

A :class:`Fault` is the unit written by the GMMU into the hardware fault
buffer (paper §2.1): the faulting page, the access type, and the origin SM /
µTLB, plus the simulated arrival timestamp the paper's per-fault
instrumentation records (Fig 4).
"""

from __future__ import annotations

import enum
from array import array
from typing import Iterator, List, NamedTuple, Sequence

import numpy as np


class AccessType(enum.IntEnum):
    """Kind of access that missed translation.

    ``PREFETCH`` models PTX ``prefetch.global.L2`` instructions (§3.2,
    Fig 5): they fault like loads but bypass the register scoreboard, the
    µTLB outstanding cap, and the SM rate throttle, and are *not* reissued if
    dropped (prefetches are hints).
    """

    READ = 0
    WRITE = 1
    PREFETCH = 2


class Fault:
    """One entry in the GPU fault buffer.

    Attributes:
        page: global 4 KiB page id of the faulting address.
        access: the :class:`AccessType`.
        sm_id: originating SM (per-fault metadata logged for Table 2).
        utlb_id: µTLB that holds the miss (``sm_id // sms_per_utlb``).
        warp_uid: id of the issuing warp; duplicate classification compares
            µTLBs, not warps, but the warp is needed to re-demand dropped
            faults.
        timestamp: simulated arrival time at the fault buffer (µs), Fig 4.
    """

    __slots__ = ("page", "access", "sm_id", "utlb_id", "warp_uid", "timestamp")

    def __init__(  # dim: page=page, timestamp=us
        self,
        page: int,
        access: AccessType,
        sm_id: int,
        utlb_id: int,
        warp_uid: int,
        timestamp: float,
    ) -> None:
        self.page = page
        self.access = access
        self.sm_id = sm_id
        self.utlb_id = utlb_id
        self.warp_uid = warp_uid
        self.timestamp = timestamp

    @property
    def is_prefetch(self) -> bool:
        return self.access == AccessType.PREFETCH

    @property
    def is_write(self) -> bool:
        return self.access == AccessType.WRITE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Fault(page={self.page}, {self.access.name}, sm={self.sm_id}, "
            f"utlb={self.utlb_id}, warp={self.warp_uid}, t={self.timestamp:.2f})"
        )


class FaultRow(NamedTuple):
    """Read-only view of one fault occurrence inside a :class:`FaultArrays`.

    Field names and meanings match :class:`Fault` exactly, so code that
    iterates a fetched batch (tracing, re-demand, tests) works unchanged on
    either representation.
    """

    page: int  # dim: page
    access: AccessType
    sm_id: int
    utlb_id: int
    warp_uid: int
    timestamp: float  # dim: us

    @property
    def is_prefetch(self) -> bool:
        return self.access == AccessType.PREFETCH

    @property
    def is_write(self) -> bool:
        return self.access == AccessType.WRITE


class FaultArrays:
    """Structure-of-arrays fault storage: one row per fault occurrence, in
    arrival order.

    This is the SoA counterpart of ``List[Fault]`` used by the vectorized
    fault pipeline (``REPRO_SOA``): the µTLB→GMMU path appends scalars (no
    per-fault object allocation), and batch assembly converts whole columns
    to NumPy arrays for mask-algebra dedup/classification (§4.2) instead of
    per-fault dict churn.  Iteration and indexing yield :class:`FaultRow`
    views so cold paths (tracing, re-demand after a replay flush) stay
    representation-agnostic.

    Internally the five integer-ish fields live *flat interleaved* in one
    list — ``(sm_id, utlb_id, page, access, warp_uid)`` five-tuples
    concatenated, matching the engine's bulk-issuance event layout — so a
    whole burst appends with a single ``list.extend`` and columns
    materialize only on demand as C-speed strided slices (``flat[2::5]``).
    Timestamps keep their own float column.
    """

    #: Flat-layout field offsets (matches the engine's event recording).
    _SM, _UTLB, _PAGE, _ACCESS, _UID = range(5)

    __slots__ = ("flat", "timestamps")

    def __init__(self) -> None:
        #: Interleaved (sm_id, utlb_id, page, access, warp_uid) records;
        #: ``access`` entries are :class:`AccessType` members stored
        #: as-given (coercion deferred to :meth:`accesses_array`).
        self.flat: List = []
        self.timestamps: List[float] = []  # dim: [us]

    def append(  # dim: page=page, timestamp=us
        self,
        page: int,
        access: AccessType,
        sm_id: int,
        utlb_id: int,
        warp_uid: int,
        timestamp: float,
    ) -> None:
        self.flat.extend((sm_id, utlb_id, page, access, warp_uid))
        self.timestamps.append(timestamp)

    # ------------------------------------------------------ column views

    @property
    def pages(self) -> List[int]:
        return self.flat[self._PAGE :: 5]  # dim: [page]

    @property
    def accesses(self) -> List[AccessType]:
        return self.flat[self._ACCESS :: 5]

    @property
    def sm_ids(self) -> List[int]:
        return self.flat[self._SM :: 5]

    @property
    def utlb_ids(self) -> List[int]:
        return self.flat[self._UTLB :: 5]

    @property
    def warp_uids(self) -> List[int]:
        return self.flat[self._UID :: 5]

    def __len__(self) -> int:
        return len(self.timestamps)

    def __getitem__(self, i: int) -> FaultRow:
        if i < 0:
            i += len(self.timestamps)
        if not 0 <= i < len(self.timestamps):
            raise IndexError(i)
        base = i * 5
        flat = self.flat
        return FaultRow(
            flat[base + self._PAGE],
            flat[base + self._ACCESS],
            flat[base + self._SM],
            flat[base + self._UTLB],
            flat[base + self._UID],
            self.timestamps[i],
        )

    def __iter__(self) -> Iterator[FaultRow]:
        flat = self.flat
        return map(
            FaultRow,
            flat[self._PAGE :: 5],
            flat[self._ACCESS :: 5],
            flat[self._SM :: 5],
            flat[self._UTLB :: 5],
            flat[self._UID :: 5],
            self.timestamps,
        )

    def clear(self) -> None:
        self.flat.clear()
        self.timestamps.clear()

    def take_front(self, n: int) -> "FaultArrays":
        """Remove and return the oldest ``n`` rows (driver-side fetch)."""
        out = FaultArrays()
        if n >= len(self.timestamps):
            # Full drain: hand over the backing lists wholesale (O(1)).
            out.flat = self.flat
            out.timestamps = self.timestamps
            self.flat = []
            self.timestamps = []
        else:
            out.flat = self.flat[: n * 5]
            out.timestamps = self.timestamps[:n]
            del self.flat[: n * 5]
            del self.timestamps[:n]
        return out

    def drain(self) -> "FaultArrays":
        """Remove and return every row (pre-replay flush)."""
        return self.take_front(len(self.timestamps))

    # ------------------------------------------------------ numpy views

    def pages_array(self) -> np.ndarray:
        return np.asarray(self.flat[self._PAGE :: 5], dtype=np.int64)  # dim: [page]

    def accesses_array(self) -> np.ndarray:
        # array('q') coerces IntEnum members via the __index__ fast path,
        # ~3x quicker than np.asarray on a member list; frombuffer wraps the
        # result zero-copy.  The view is read-only by convention: it borrows
        # the temporary array's buffer.
        return np.frombuffer(
            array("q", self.flat[self._ACCESS :: 5]), dtype=np.int64
        )

    def sm_ids_array(self) -> np.ndarray:
        return np.asarray(self.flat[self._SM :: 5], dtype=np.int64)

    def utlb_ids_array(self) -> np.ndarray:
        return np.asarray(self.flat[self._UTLB :: 5], dtype=np.int64)

    def rows_for_pages(self, pages: Sequence[int]) -> List[FaultRow]:
        """Rows whose page lies in ``pages`` (order preserved) — the SoA
        fast path for the driver's defer/unserviced filters."""
        wanted = set(pages)
        return [row for row in self if row.page in wanted]

    # ----------------------------------------------- conversion helpers

    @classmethod
    def from_faults(cls, faults: Sequence[Fault]) -> "FaultArrays":
        out = cls()
        for f in faults:
            out.append(f.page, f.access, f.sm_id, f.utlb_id, f.warp_uid, f.timestamp)
        return out

    def to_faults(self) -> List[Fault]:
        return [
            Fault(
                row.page,
                AccessType(row.access),
                row.sm_id,
                row.utlb_id,
                row.warp_uid,
                row.timestamp,
            )
            for row in self
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultArrays({len(self.pages)} rows)"
