"""µTLB model: the per-µTLB outstanding-fault cap and replay semantics.

Each hardware thread's page fault is recognized and held by its µTLB
(paper §2.1).  Section 3.2 measures a hard limit of **56 outstanding faults
per µTLB** on Volta (Fig 3: the first vecadd batch contains exactly 56
faults), with adjacent SMs sharing one µTLB (§4.2).

A *fault replay* issued by the driver after servicing a batch "clears the
waiting status of the µTLBs, causing them to replay the prior miss"
(§2.1): outstanding entries vanish and still-unsatisfied accesses refault.
"""

from __future__ import annotations


class UTlb:
    """Outstanding-fault accounting for one µTLB.

    A µTLB tracks misses *per page*: when several warps (or lanes) it
    services miss on the same page, the requests merge into the single
    outstanding entry — which is why the paper's type-1 duplicates are
    attributed to spatial locality plus "SMs spuriously wak[ing] up to
    reissue the same fault during a batch" (§4.2) rather than one entry per
    waiting warp.  The model reproduces the spurious wakeups with a
    deterministic cadence: every ``SPURIOUS_PERIOD``-th merged request emits
    a duplicate fault entry anyway.
    """

    #: Every Nth merged same-page request still emits a duplicate entry.
    SPURIOUS_PERIOD = 4

    __slots__ = (
        "utlb_id",
        "limit",
        "outstanding",
        "pending_pages",
        "total_issued",
        "total_merged",
        "total_spurious",
        "total_replays",
        "total_early_cancelled",
        "_merge_counter",
        "_san",
    )

    def __init__(self, utlb_id: int, limit: int) -> None:
        self.utlb_id = utlb_id
        #: Maximum simultaneously-outstanding faults (56 on the paper's HW).
        self.limit = limit
        self.outstanding = 0
        #: Pages with an outstanding miss entry in this µTLB.
        self.pending_pages = set()
        self.total_issued = 0
        self.total_merged = 0
        self.total_spurious = 0
        self.total_replays = 0
        self.total_early_cancelled = 0
        self._merge_counter = 0
        #: Attached UVMSan checker, or None (the common, zero-cost case).
        self._san = None

    def attach_sanitizer(self, sanitizer) -> None:
        """Check the outstanding-fault cap after every mutation."""
        self._san = sanitizer

    @property
    def available(self) -> int:
        """Fault slots free right now."""
        return max(0, self.limit - self.outstanding)

    def request(self, page: int) -> bool:
        """A warp misses on ``page``; True if a new fault entry must be
        written to the buffer, False if the request merged into an existing
        entry (occasionally emitting a spurious duplicate — still True).

        The caller must check :attr:`available` first for new entries.
        """
        if page in self.pending_pages:
            self._merge_counter += 1
            if self._merge_counter % self.SPURIOUS_PERIOD == 0:
                self.total_spurious += 1
                return True  # spurious reissue: duplicate entry, no new slot
            self.total_merged += 1
            return False
        self.pending_pages.add(page)
        self.outstanding += 1
        self.total_issued += 1
        if self._san is not None:
            self._san.on_utlb(self)
        return True

    def cancel(self, page: int) -> None:
        """Roll back a :meth:`request` whose fault-buffer write was dropped
        by hardware — without this, later same-page demands would merge
        against an entry that never reached the buffer."""
        if page in self.pending_pages:
            self.pending_pages.discard(page)
            self.outstanding -= 1
            self.total_issued -= 1
            if self._san is not None:
                self._san.on_utlb(self)

    def early_cancel(self, page: int) -> None:
        """Injected early cancellation (:mod:`repro.inject`): an outstanding
        entry is dropped *before* replay, as if the µTLB lost it.

        Unlike :meth:`cancel` this keeps ``total_issued`` — the entry's
        fault-buffer write already happened and stays serviceable; the µTLB
        merely forgets it, so later same-page misses re-request a fresh
        entry (extra pressure on the 56-entry cap)."""
        if page in self.pending_pages:
            self.pending_pages.discard(page)
            self.outstanding -= 1
            self.total_early_cancelled += 1
            if self._san is not None:
                self._san.on_utlb(self)

    def replay(self) -> None:
        """Fault replay: clear all waiting entries (they refault if needed)."""
        self.outstanding = 0
        self.pending_pages.clear()
        self.total_replays += 1
        if self._san is not None:
            self._san.on_utlb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UTlb(id={self.utlb_id}, outstanding={self.outstanding}/{self.limit})"
