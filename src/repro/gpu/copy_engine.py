"""Copy-engine transfer cost model.

The driver instructs the GPU to copy pages using "high-performance hardware
copy engines" over the interconnect (paper §2.1).  The testbed's PCIe 3.0
x16 link sustains ~12 GB/s with a per-transfer setup latency, so each
contiguous run of pages costs ``latency + bytes / bandwidth``.

The paper's central finding about transfers (Fig 7) is that they account for
*at most ~25 %* of batch time; the cost model constants in
:mod:`repro.hostos.cost_model` are calibrated so management costs dominate
exactly as measured.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import InvariantViolation, TransferFault, TransferStuck
from ..units import PAGE_SIZE

#: UVMSan gate for the ``contiguous_runs`` sortedness precondition.  Module
#: state rather than per-engine: the helper is a free function used by the
#: driver and the engine alike.  Off by default — the precondition check is
#: O(n) on a hot path and every call site sorts by construction.
_ASSERT_SORTED = False


def enable_sortedness_checks(enabled: bool) -> None:
    """Arm (or disarm) the sortedness precondition in ``contiguous_runs``.

    Armed automatically whenever an active UVMSan sanitizer is built.
    """
    global _ASSERT_SORTED
    _ASSERT_SORTED = enabled


class CopyEngine:
    """Accumulates transfer cost and traffic statistics.

    Copy operations for one batch are pushed to the engine through the GPU
    command push-buffer and pipeline: the full setup latency is paid once
    per burst, plus a small per-operation overhead per contiguous run, plus
    wire time for the bytes.

    Under chaos testing (:mod:`repro.inject`) a burst may abort mid-flight
    (:class:`repro.errors.TransferFault`), hang past the driver's phase
    deadline (:class:`repro.errors.TransferStuck`), or complete browned-out
    (wire time multiplied); counters are only advanced for bytes that
    actually moved, so byte conservation holds under every profile.
    """

    __slots__ = (
        "engine_id",
        "bandwidth_bytes_per_usec",
        "transfer_latency_usec",
        "per_run_overhead_usec",
        "bytes_h2d",
        "bytes_d2h",
        "transfers_h2d",
        "transfers_d2h",
        "failed_bursts",
        "stuck_events",
        "brownout_bursts",
        "_obs",
        "_clock",
        "_pid",
        "_m_bytes",
        "_m_bursts",
        "_san",
        "_inj",
        "_flight",
        "ts_hint",
    )

    def __init__(
        self,
        bandwidth_bytes_per_usec: float,
        transfer_latency_usec: float,
        per_run_overhead_usec: float = 0.4,
        engine_id: int = 0,
    ) -> None:
        self.engine_id = engine_id
        self.bandwidth_bytes_per_usec = bandwidth_bytes_per_usec
        self.transfer_latency_usec = transfer_latency_usec
        self.per_run_overhead_usec = per_run_overhead_usec
        self.bytes_h2d = 0
        self.bytes_d2h = 0
        self.transfers_h2d = 0
        self.transfers_d2h = 0
        #: Injected-failure statistics (chaos testing only).
        self.failed_bursts = 0
        self.stuck_events = 0
        self.brownout_bursts = 0
        self._obs = None
        self._clock = None
        self._pid = 0
        self._m_bytes = None
        self._m_bursts = None
        #: Attached UVMSan checker, or None (the common, zero-cost case).
        self._san = None
        #: Attached fault injector, or None (the common, zero-cost case).
        self._inj = None
        #: Attached flight recorder, or None (the common, zero-cost case).
        self._flight = None
        #: Timestamp to place the next burst at on the trace timeline; the
        #: driver sets it before copies made while the clock is deferred
        #: (per-VABlock costs apply to the clock only after the block loop).
        self.ts_hint = None

    # -------------------------------------------------------- observability

    def attach_obs(self, obs, clock) -> None:
        """Hook the copy engine into the observability layer: every burst
        becomes a duration slice on the CE trace track and bumps the
        ``uvm_ce_*`` metric families."""
        from ..obs.chrome_trace import PID_COPY_ENGINE

        self._obs = obs
        self._clock = clock
        self._pid = obs.pid(PID_COPY_ENGINE)
        self._m_bytes = obs.metrics.counter(
            "uvm_ce_bytes_total", "Bytes moved by the copy engines", labels=("dir",)
        )
        self._m_bursts = obs.metrics.counter(
            "uvm_ce_bursts_total", "Copy-engine burst operations", labels=("dir",)
        )

    def attach_sanitizer(self, sanitizer) -> None:
        """Check byte conservation + cost sanity on every burst."""
        self._san = sanitizer

    def attach_injector(self, injector) -> None:
        """Enable the ``ce.*`` injection sites on this engine."""
        self._inj = injector

    def attach_flight(self, flight) -> None:
        """Record injected burst failures in the flight-recorder ring."""
        self._flight = flight

    def _maybe_inject(self, cost: float) -> float:
        """Roll the ``ce.*`` sites for one burst; returns the (possibly
        browned-out) cost, or raises before any byte counter moves."""
        inj = self._inj
        if inj is None or cost <= 0.0:
            return cost
        flight = self._flight
        if inj.fire("ce.stuck"):
            self.stuck_events += 1
            if flight is not None:
                flight.record("ce.stuck", self.engine_id)
            raise TransferStuck(self.engine_id)
        if inj.fire("ce.transfer_fault"):
            self.failed_bursts += 1
            if flight is not None:
                flight.record("ce.transfer_fault", self.engine_id)
            raise TransferFault(self.engine_id, cost * inj.waste_frac("ce.transfer_fault"))
        if inj.fire("ce.brownout"):
            self.brownout_bursts += 1
            if flight is not None:
                flight.record("ce.brownout", self.engine_id)
            return cost * inj.factor("ce.brownout")
        return cost

    def _observe_burst(self, direction: str, nbytes: int, num_runs: int, cost: float) -> None:
        obs = self._obs
        if obs is None or nbytes == 0:
            return
        self._m_bytes.labels(direction).inc(nbytes)
        self._m_bursts.labels(direction).inc()
        if obs.chrome.enabled:
            ts = self.ts_hint if self.ts_hint is not None else self._clock.now
            self.ts_hint = None
            obs.chrome.duration(
                f"copy {direction}",
                "ce",
                ts=ts,
                dur=cost,
                pid=self._pid,
                tid=0 if direction == "h2d" else 1,
                args={"bytes": nbytes, "runs": num_runs},
            )

    def cost_for_bytes(self, nbytes: int) -> float:
        """Time (µs) for one standalone transfer of ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        return self.transfer_latency_usec + nbytes / self.bandwidth_bytes_per_usec

    def _burst_cost(self, run_lengths: Sequence[int]) -> float:
        runs = [n for n in run_lengths if n > 0]
        if not runs:
            return 0.0
        nbytes = sum(runs) * PAGE_SIZE
        return (
            self.transfer_latency_usec
            + len(runs) * self.per_run_overhead_usec
            + nbytes / self.bandwidth_bytes_per_usec
        )

    def host_to_device(self, run_lengths: Sequence[int]) -> float:
        """Copy contiguous page runs host→device; returns total time (µs).

        ``run_lengths`` are page counts of each contiguous run — the driver
        coalesces adjacent pages into single copy-engine operations and
        pipelines the runs of one burst.
        """
        cost = self._maybe_inject(self._burst_cost(run_lengths))
        nbytes = 0
        for npages in run_lengths:
            nbytes += npages * PAGE_SIZE
            self.transfers_h2d += 1
        self.bytes_h2d += nbytes
        if self._san is not None:
            self._san.on_ce_burst("h2d", run_lengths, nbytes, cost)
        self._observe_burst("h2d", nbytes, len(run_lengths), cost)
        return cost

    def device_to_host(self, run_lengths: Sequence[int]) -> float:
        """Copy contiguous page runs device→host (eviction path)."""
        cost = self._maybe_inject(self._burst_cost(run_lengths))
        nbytes = 0
        for npages in run_lengths:
            nbytes += npages * PAGE_SIZE
            self.transfers_d2h += 1
        self.bytes_d2h += nbytes
        if self._san is not None:
            self._san.on_ce_burst("d2h", run_lengths, nbytes, cost)
        self._observe_burst("d2h", nbytes, len(run_lengths), cost)
        return cost


def contiguous_runs(pages: Sequence[int]) -> list:
    """Lengths of maximal contiguous runs in a sorted page-id sequence.

    The input must be strictly increasing: on unsorted (or duplicated)
    input the run decomposition silently splits at every inversion,
    inflating per-run overhead and transfer counts without any error.  With
    UVMSan active the precondition is asserted
    (:func:`enable_sortedness_checks`); otherwise callers are trusted.

    >>> contiguous_runs([4, 5, 6, 9, 10, 20])
    [3, 2, 1]
    """
    if _ASSERT_SORTED:
        last = None
        for page in pages:
            if last is not None and page <= last:
                raise InvariantViolation(
                    "ce-runs",
                    f"contiguous_runs input not strictly increasing: "
                    f"{page} follows {last}",
                )
            last = page
    runs = []
    count = 0
    prev = None
    for page in pages:
        if prev is not None and page == prev + 1:
            count += 1
        else:
            if count:
                runs.append(count)
            count = 1
        prev = page
    if count:
        runs.append(count)
    return runs
