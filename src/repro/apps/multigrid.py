"""Geometric multigrid Poisson solver (HPGMG-style), from scratch.

A 2-D V-cycle with red-black Gauss-Seidel smoothing, full-weighting
restriction, and bilinear prolongation — the numeric counterpart of
:class:`repro.workloads.hpgmg.Hpgmg`.  One V-cycle must reduce the residual
norm by a solid factor on a Poisson problem; tests assert the contraction.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..api import UvmSystem
from ..config import default_config
from ..workloads.hpgmg import Hpgmg
from .gauss_seidel import gs_sweep, residual_norm
from .managed_compute import ManagedAppResult


def restrict_full_weighting(fine: np.ndarray) -> np.ndarray:
    """Full-weighting restriction to the half-resolution grid.

    Coarse point (I, J) sits on fine point (2I, 2J) and averages its 3×3
    neighbourhood with the classic 1/16 [1 2 1; 2 4 2; 1 2 1] stencil,
    using a zero halo for the Dirichlet boundary.

    >>> restrict_full_weighting(np.ones((8, 8))).shape
    (4, 4)
    """
    nf = fine.shape[0]
    n = nf // 2
    p = np.pad(fine, 1)
    rows = slice(1, 2 * n, 2)  # padded indices of fine points 0, 2, 4, ...
    up, mid, down = slice(0, 2 * n - 1, 2), rows, slice(2, 2 * n + 1, 2)
    return (
        4.0 * p[mid, mid]
        + 2.0 * (p[up, mid] + p[down, mid] + p[mid, up] + p[mid, down])
        + (p[up, up] + p[up, down] + p[down, up] + p[down, down])
    ) / 16.0


def prolong_bilinear(coarse: np.ndarray) -> np.ndarray:
    """Bilinear interpolation to the double-resolution grid.

    >>> prolong_bilinear(np.ones((4, 4))).shape
    (8, 8)
    """
    n = coarse.shape[0] * 2
    fine = np.zeros((n, n), dtype=coarse.dtype)
    fine[::2, ::2] = coarse
    fine[1:-1:2, ::2] = 0.5 * (coarse[:-1, :] + coarse[1:, :])
    fine[::2, 1:-1:2] = 0.5 * (coarse[:, :-1] + coarse[:, 1:])
    fine[1:-1:2, 1:-1:2] = 0.25 * (
        coarse[:-1, :-1] + coarse[1:, :-1] + coarse[:-1, 1:] + coarse[1:, 1:]
    )
    return fine


class MultigridPoisson:
    """V-cycle solver for ``∇²u = f`` with zero Dirichlet boundaries."""

    def __init__(self, levels: int = 3, pre_smooth: int = 2, post_smooth: int = 2, coarse_smooth: int = 20):
        self.levels = levels
        self.pre_smooth = pre_smooth
        self.post_smooth = post_smooth
        self.coarse_smooth = coarse_smooth

    def residual(self, u: np.ndarray, f: np.ndarray, h: float) -> np.ndarray:
        res = np.zeros_like(u)
        h2 = h * h
        res[1:-1, 1:-1] = f[1:-1, 1:-1] - (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:] - 4.0 * u[1:-1, 1:-1]
        ) / h2
        return res

    def v_cycle(self, u: np.ndarray, f: np.ndarray, h: float, level: int = 0) -> np.ndarray:
        h2 = h * h
        if level == self.levels - 1 or u.shape[0] <= 4:
            for _ in range(self.coarse_smooth):
                gs_sweep(u, f, h2)
            return u
        for _ in range(self.pre_smooth):
            gs_sweep(u, f, h2)
        res = self.residual(u, f, h)
        coarse_res = restrict_full_weighting(res)
        coarse_u = np.zeros_like(coarse_res)
        # Error equation: A e = r, where r = f - A u on the fine grid.
        self.v_cycle(coarse_u, coarse_res, 2.0 * h, level + 1)
        u += prolong_bilinear(coarse_u)
        for _ in range(self.post_smooth):
            gs_sweep(u, f, h2)
        return u

    def solve(self, f: np.ndarray, cycles: int, h: float = 1.0) -> tuple:
        """Run V-cycles from a zero guess; returns (u, residual history)."""
        u = np.zeros_like(f)
        history: List[float] = [residual_norm(u, f, h * h)]
        for _ in range(cycles):
            self.v_cycle(u, f, h)
            history.append(residual_norm(u, f, h * h))
        return u, history


def run_managed_multigrid(
    n: int = 512,
    levels: int = 2,
    cycles: int = 2,
    system: Optional[UvmSystem] = None,
    seed: int = 0,
) -> ManagedAppResult:
    """Solve a Poisson problem with V-cycles and simulate HPGMG's paging."""
    if system is None:
        system = UvmSystem(default_config())
    numeric_n = min(n, 64)
    rng = np.random.default_rng(seed)
    f = rng.standard_normal((numeric_n, numeric_n))

    solver = MultigridPoisson(levels=levels)
    u, history = solver.solve(f, cycles)
    err = 0.0 if history[-1] < history[0] else history[-1] - history[0]

    workload = Hpgmg(n=n, levels=levels, cycles=cycles, num_programs=16, band_rows=16)
    run = workload.run(system)
    result = ManagedAppResult(value=u, run=run, max_abs_error=err)
    result.residual_history = history  # type: ignore[attr-defined]
    return result
