"""BabelStream triad: real arithmetic + simulated paging profile."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..api import UvmSystem
from ..config import default_config
from ..units import PAGE_SIZE
from ..workloads.stream import StreamTriad
from .managed_compute import ManagedAppResult


def triad(b: np.ndarray, c: np.ndarray, scalar: float, chunk: int = 4096) -> np.ndarray:
    """Chunked ``a[i] = b[i] + scalar * c[i]`` (grid-stride traversal).

    >>> triad(np.ones(4), np.ones(4), 2.0).tolist()
    [3.0, 3.0, 3.0, 3.0]
    """
    if b.shape != c.shape:
        raise ValueError("triad arrays must have equal shape")
    a = np.empty_like(b)
    n = b.size
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        a[lo:hi] = b[lo:hi] + scalar * c[lo:hi]
    return a


def run_managed_triad(
    nbytes: int = 8 << 20,
    scalar: float = 0.4,
    system: Optional[UvmSystem] = None,
    seed: int = 0,
) -> ManagedAppResult:
    """Run the triad numerically and simulate its UVM paging profile."""
    if system is None:
        system = UvmSystem(default_config())
    n = nbytes // 4  # float32 elements
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(n).astype(np.float32)
    c = rng.standard_normal(n).astype(np.float32)

    value = triad(b, c, scalar, chunk=PAGE_SIZE // 4)
    reference = b + scalar * c
    err = float(np.max(np.abs(value - reference)))

    workload = StreamTriad(nbytes=nbytes)
    run = workload.run(system)
    return ManagedAppResult(value=value, run=run, max_abs_error=err)
