"""Graph and sparse numerics: BFS and CSR SpMV, from scratch.

The counterparts of :mod:`repro.workloads.graph`: real algorithms over the
*same seeded data structures* the workload models traverse, validated
against networkx (BFS distances) and scipy.sparse (SpMV).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..api import UvmSystem
from ..config import default_config
from ..workloads.graph import BfsWorkload, SpmvWorkload
from .managed_compute import ManagedAppResult


def bfs_distances(row_ptr: np.ndarray, col_idx: np.ndarray, source: int) -> np.ndarray:
    """Level-synchronous BFS distances over a CSR graph (-1 = unreachable).

    >>> import numpy as np
    >>> # chain 0 -> 1 -> 2
    >>> bfs_distances(np.array([0, 1, 2, 2]), np.array([1, 2]), 0).tolist()
    [0, 1, 2]
    """
    n = row_ptr.size - 1
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        neighbours = (
            np.concatenate(
                [col_idx[row_ptr[v] : row_ptr[v + 1]] for v in frontier]
            )
            if frontier.size
            else np.empty(0, dtype=np.int64)
        )
        fresh = np.unique(neighbours[dist[neighbours] < 0]) if neighbours.size else neighbours
        dist[fresh] = level
        frontier = fresh
    return dist


def csr_spmv(
    row_ptr: np.ndarray, col_idx: np.ndarray, values: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """CSR ``y = A·x`` with an explicit row loop (the workload's traversal).

    >>> import numpy as np
    >>> # [[2, 0], [0, 3]] @ [1, 1]
    >>> csr_spmv(np.array([0, 1, 2]), np.array([0, 1]), np.array([2.0, 3.0]),
    ...          np.array([1.0, 1.0])).tolist()
    [2.0, 3.0]
    """
    n = row_ptr.size - 1
    y = np.zeros(n, dtype=np.result_type(values, x))
    for row in range(n):
        lo, hi = row_ptr[row], row_ptr[row + 1]
        if hi > lo:
            y[row] = values[lo:hi] @ x[col_idx[lo:hi]]
    return y


def run_managed_bfs(
    num_nodes: int = 4096,
    avg_degree: int = 8,
    system: Optional[UvmSystem] = None,
    seed: int = 7,
) -> ManagedAppResult:
    """BFS numerically (validated against networkx) + its paging profile."""
    if system is None:
        system = UvmSystem(default_config())
    workload = BfsWorkload(num_nodes=num_nodes, avg_degree=avg_degree, seed=seed)
    row_ptr, col_idx = workload.graph_csr

    dist = bfs_distances(row_ptr, col_idx, workload.source)
    err = 0.0
    try:
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(num_nodes))
        for v in range(num_nodes):
            for u in col_idx[row_ptr[v] : row_ptr[v + 1]]:
                graph.add_edge(v, int(u))
        ref = nx.single_source_shortest_path_length(graph, workload.source)
        for node, d in ref.items():
            if dist[node] != d:
                err += 1
    except ImportError:  # pragma: no cover - networkx is installed here
        pass

    run = workload.run(system)
    return ManagedAppResult(value=dist, run=run, max_abs_error=err)


def run_managed_spmv(
    n: int = 4096,
    nnz_per_row: int = 8,
    system: Optional[UvmSystem] = None,
    seed: int = 11,
) -> ManagedAppResult:
    """SpMV numerically (validated against scipy) + its paging profile."""
    if system is None:
        system = UvmSystem(default_config())
    workload = SpmvWorkload(n=n, nnz_per_row=nnz_per_row, seed=seed)
    row_ptr, col_idx, values = workload.matrix_csr
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)

    y = csr_spmv(row_ptr, col_idx, values, x)
    err = 0.0
    try:
        import scipy.sparse as sp

        mat = sp.csr_matrix((values, col_idx, row_ptr), shape=(n, n))
        err = float(np.max(np.abs(mat @ x - y)))
    except ImportError:  # pragma: no cover - scipy is installed here
        pass

    run = workload.run(system)
    return ManagedAppResult(value=y, run=run, max_abs_error=err)
