"""Real-numerics applications driven through the managed-memory API.

Each app implements its algorithm *from scratch* with NumPy (verifiable
against library references) using the same blocking/sweep structure as its
:mod:`repro.workloads` access-pattern model, and runs both together: the
numbers come out of the math, the batch profile comes out of the simulated
UVM stack servicing the same traversal.
"""

from .managed_compute import ManagedArray, ManagedAppResult
from .gemm import blocked_gemm, run_managed_gemm
from .triad import triad, run_managed_triad
from .fft import iterative_fft, run_managed_fft
from .gauss_seidel import gauss_seidel_poisson, run_managed_gauss_seidel
from .multigrid import MultigridPoisson, run_managed_multigrid
from .graph import bfs_distances, csr_spmv, run_managed_bfs, run_managed_spmv

__all__ = [
    "ManagedArray",
    "ManagedAppResult",
    "blocked_gemm",
    "run_managed_gemm",
    "triad",
    "run_managed_triad",
    "iterative_fft",
    "run_managed_fft",
    "gauss_seidel_poisson",
    "run_managed_gauss_seidel",
    "MultigridPoisson",
    "run_managed_multigrid",
    "bfs_distances",
    "csr_spmv",
    "run_managed_bfs",
    "run_managed_spmv",
]
