"""Glue between NumPy data and managed allocations.

:class:`ManagedArray` pairs a NumPy ndarray with a managed allocation of the
same byte extent, so an application can do its real arithmetic on the array
while the simulated UVM stack services the identical page traversal.  The
pairing is by construction (same shape, same dtype, same blocking), not by
instrumented interception — Python/NumPy cannot trap page-granularity loads
the way a µTLB does, so the honest statement is: *the workload model and the
computation walk the same index space*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..api import ManagedAllocation, RunResult, UvmSystem


class ManagedArray:
    """A NumPy array backed by a managed allocation."""

    def __init__(
        self,
        system: UvmSystem,
        shape: Tuple[int, ...],
        dtype=np.float32,
        name: str = "",
        fill: Optional[float] = None,
    ) -> None:
        self.system = system
        self.data = np.zeros(shape, dtype=dtype)
        if fill is not None:
            self.data.fill(fill)
        self.alloc: ManagedAllocation = system.managed_alloc(
            self.data.nbytes, name or "managed"
        )

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def host_init(self, values: Optional[np.ndarray] = None, **touch_kwargs) -> None:
        """Fill on the host (CPU first-touch) and mark pages host-resident."""
        if values is not None:
            np.copyto(self.data, values)
        self.system.host_touch(self.alloc, **touch_kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ManagedArray(shape={self.data.shape}, dtype={self.data.dtype}, alloc={self.alloc.name!r})"


@dataclass
class ManagedAppResult:
    """A numeric result together with its simulated paging profile."""

    #: The application's computed output (NumPy array or scalar).
    value: np.ndarray
    #: Batch/kernel profile from the simulated UVM run.
    run: RunResult
    #: Max absolute error against the reference implementation.
    max_abs_error: float = 0.0
