"""Red-black Gauss-Seidel Poisson smoother, implemented from scratch.

Solves ``∇²u = f`` on the unit square with Dirichlet zero boundaries using
red-black ordering — the traversal of
:class:`repro.workloads.gauss_seidel.GaussSeidel`.  The residual must drop
monotonically for a diagonally-dominant system, which the tests assert.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..api import UvmSystem
from ..config import default_config
from ..workloads.gauss_seidel import GaussSeidel
from .managed_compute import ManagedAppResult


def gs_sweep(u: np.ndarray, f: np.ndarray, h2: float) -> None:
    """One in-place red-black Gauss-Seidel sweep (interior points).

    Red points (i+j even) update first from the current black values, then
    black points update from the fresh red values — the ordering that makes
    each half-sweep fully parallel on the GPU.
    """
    for colour in (0, 1):
        i, j = np.meshgrid(
            np.arange(1, u.shape[0] - 1), np.arange(1, u.shape[1] - 1), indexing="ij"
        )
        mask = ((i + j) % 2) == colour
        ii, jj = i[mask], j[mask]
        u[ii, jj] = 0.25 * (
            u[ii - 1, jj] + u[ii + 1, jj] + u[ii, jj - 1] + u[ii, jj + 1] - h2 * f[ii, jj]
        )


def residual_norm(u: np.ndarray, f: np.ndarray, h2: float) -> float:
    """L2 norm of the discrete Poisson residual on interior points."""
    lap = (
        u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:] - 4.0 * u[1:-1, 1:-1]
    ) / h2
    return float(np.linalg.norm(lap - f[1:-1, 1:-1]))


def gauss_seidel_poisson(
    f: np.ndarray, sweeps: int, h: float = 1.0
) -> Tuple[np.ndarray, list]:
    """Run ``sweeps`` red-black GS sweeps from a zero initial guess.

    Returns the solution estimate and the residual-norm history.
    """
    u = np.zeros_like(f)
    h2 = h * h
    history = [residual_norm(u, f, h2)]
    for _ in range(sweeps):
        gs_sweep(u, f, h2)
        history.append(residual_norm(u, f, h2))
    return u, history


def run_managed_gauss_seidel(
    n: int = 512,
    sweeps: int = 4,
    system: Optional[UvmSystem] = None,
    seed: int = 0,
) -> ManagedAppResult:
    """Smooth a Poisson problem and simulate the sweeps' paging profile."""
    if system is None:
        system = UvmSystem(default_config())
    numeric_n = min(n, 128)  # keep the Python stencil loops fast
    rng = np.random.default_rng(seed)
    f = rng.standard_normal((numeric_n, numeric_n))

    u, history = gauss_seidel_poisson(f, sweeps)
    # Convergence of the smoother: residual should not increase.
    err = 0.0 if history[-1] <= history[0] else history[-1] - history[0]

    workload = GaussSeidel(n=n, sweeps=sweeps, num_programs=16, band_rows=16)
    run = workload.run(system)
    result = ManagedAppResult(value=u, run=run, max_abs_error=err)
    result.residual_history = history  # type: ignore[attr-defined]
    return result
