"""Blocked GEMM: real arithmetic + simulated paging profile.

:func:`blocked_gemm` is a from-scratch tiled matrix multiply using the exact
tile traversal of :class:`repro.workloads.sgemm.Gemm` (one C tile per
"program", k-panel loop inside), validated against ``A @ B``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..api import UvmSystem
from ..config import default_config
from ..workloads.sgemm import Gemm
from .managed_compute import ManagedAppResult


def blocked_gemm(a: np.ndarray, b: np.ndarray, tile: int) -> np.ndarray:
    """Tiled ``C = A @ B`` with the workload model's traversal order.

    >>> rng = np.random.default_rng(0)
    >>> a = rng.random((8, 8), dtype=np.float32)
    >>> b = rng.random((8, 8), dtype=np.float32)
    >>> np.allclose(blocked_gemm(a, b, 4), a @ b, atol=1e-4)
    True
    """
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n, n):
        raise ValueError("blocked_gemm expects square matrices of equal size")
    if n % tile:
        raise ValueError("tile must divide n")
    c = np.zeros((n, n), dtype=np.result_type(a, b))
    nt = n // tile
    for i in range(nt):
        for j in range(nt):
            acc = np.zeros((tile, tile), dtype=c.dtype)
            for k in range(nt):
                a_panel = a[i * tile : (i + 1) * tile, k * tile : (k + 1) * tile]
                b_panel = b[k * tile : (k + 1) * tile, j * tile : (j + 1) * tile]
                acc += a_panel @ b_panel
            c[i * tile : (i + 1) * tile, j * tile : (j + 1) * tile] = acc
    return c


def run_managed_gemm(
    n: int = 512,
    tile: int = 128,
    elem_bytes: int = 4,
    system: Optional[UvmSystem] = None,
    seed: int = 0,
) -> ManagedAppResult:
    """Compute a GEMM numerically and simulate its UVM paging profile."""
    if system is None:
        system = UvmSystem(default_config())
    dtype = np.float32 if elem_bytes == 4 else np.float64
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)).astype(dtype)
    b = rng.standard_normal((n, n)).astype(dtype)

    value = blocked_gemm(a, b, tile)
    reference = a @ b
    err = float(np.max(np.abs(value - reference)))

    workload = Gemm(n=n, tile=tile, elem_bytes=elem_bytes)
    run = workload.run(system)
    return ManagedAppResult(value=value, run=run, max_abs_error=err)
