"""Iterative radix-2 FFT, implemented from scratch.

The same pass structure the :class:`repro.workloads.fft.CuFft` model walks:
a bit-reversal permutation followed by log2(N) butterfly passes with
doubling stride.  Validated against ``numpy.fft.fft``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..api import UvmSystem
from ..config import default_config
from ..workloads.fft import CuFft
from .managed_compute import ManagedAppResult


def _bit_reverse_indices(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


def iterative_fft(x: np.ndarray) -> np.ndarray:
    """Radix-2 decimation-in-time FFT of a power-of-two-length signal.

    >>> sig = np.array([1.0, 2.0, 3.0, 4.0])
    >>> np.allclose(iterative_fft(sig), np.fft.fft(sig))
    True
    """
    n = x.size
    if n & (n - 1):
        raise ValueError("iterative_fft requires power-of-two length")
    out = x.astype(np.complex128)[_bit_reverse_indices(n)]
    half = 1
    while half < n:
        # Butterfly pass with stride = half; twiddles for this pass.
        tw = np.exp(-2j * np.pi * np.arange(half) / (2 * half))
        step = 2 * half
        for base in range(0, n, step):
            lo = out[base : base + half].copy()  # copy: slices alias `out`
            hi = out[base + half : base + step] * tw
            out[base : base + half] = lo + hi
            out[base + half : base + step] = lo - hi
        half = step
    return out


def run_managed_fft(
    nbytes: int = 4 << 20,
    system: Optional[UvmSystem] = None,
    seed: int = 0,
) -> ManagedAppResult:
    """Compute an FFT numerically and simulate its UVM paging profile.

    The numeric signal length is capped so the O(N log N) Python loops stay
    fast; the paging model walks the full ``nbytes`` signal.
    """
    if system is None:
        system = UvmSystem(default_config())
    n_numeric = min(1 << 14, nbytes // 16)  # complex128
    rng = np.random.default_rng(seed)
    signal = rng.standard_normal(n_numeric) + 1j * rng.standard_normal(n_numeric)

    value = iterative_fft(signal)
    reference = np.fft.fft(signal)
    err = float(np.max(np.abs(value - reference)))

    workload = CuFft(nbytes=nbytes)
    run = workload.run(system)
    return ManagedAppResult(value=value, run=run, max_abs_error=err)
