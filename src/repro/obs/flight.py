"""Always-on flight recorder: a bounded ring of recent structured events.

Chaos runs used to die with a stack trace and nothing else — the batch log
shows *completed* batches, the metrics registry shows totals, but neither
says what the system was doing in the moments before it fell over.  The
flight recorder is the black box: a fixed-capacity ring
(:class:`collections.deque`) of small ``(sim_time, kind, args)`` tuples fed
by the engine, driver, copy engines, injector, and sanitizer at their
interesting transitions — batch open/close/abort, retries and failovers,
evictions, checkpoints, injected crashes, invariant violations.

Design contract (same as every :mod:`repro.obs` instrument):

* **timeline-neutral** — the recorder only *observes*; it never advances the
  :class:`~repro.sim.clock.SimClock` or draws RNG, so the simulated timeline
  is bit-identical with it on or off (and its contents are deterministic:
  equal seeds produce byte-identical event dumps);
* **near-zero cost** — one tuple build plus one deque append per event when
  on; the shared :data:`NULL_FLIGHT` null object when off, so call sites
  never branch;
* **bounded** — the ring keeps the newest :attr:`capacity` events and counts
  overwrites in :attr:`dropped`, so a week-long soak costs the same memory
  as a smoke test.

Crash bundles (:mod:`repro.obs.bundle`) dump the ring on the way down; the
``uvm-repro analyze`` report engine replays it to name the failing batch.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List, Optional, Tuple

#: One recorded event: (simulated time µs, event kind, kind-specific args).
FlightEvent = Tuple[float, str, Tuple]

#: Event kinds the stock hooks emit (call sites may add more; the bundle
#: schema treats the kind as an open string).
KNOWN_KINDS = (
    "batch.open",
    "batch.close",
    "batch.abort",
    "retry",
    "failover",
    "evict",
    "checkpoint",
    "crash.injected",
    "crash.recovered",
    "launch",
    "launch.done",
    "resume",
    "san.violation",
    "inject.crash_due",
)


class FlightRecorder:
    """Bounded ring of recent structured events (the run's black box)."""

    __slots__ = ("clock", "capacity", "dropped", "_ring")

    enabled = True

    def __init__(self, clock, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.clock = clock
        self.capacity = capacity
        self.dropped = 0
        self._ring: deque = deque(maxlen=capacity)

    # ------------------------------------------------------------ recording

    def record(self, kind: str, *args) -> None:
        """Append one event stamped with the current simulated time."""
        ring = self._ring
        if len(ring) == self.capacity:
            self.dropped += 1
        ring.append((self.clock.now, kind, args))

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[FlightEvent]:
        return iter(self._ring)

    def events(self) -> List[FlightEvent]:
        return list(self._ring)

    def tail(self, n: int) -> List[FlightEvent]:
        """The newest ``n`` events, oldest first."""
        if n <= 0:
            return []
        return list(self._ring)[-n:]

    def select(self, kind: str) -> List[FlightEvent]:
        return [e for e in self._ring if e[1] == kind]

    def last(self, kind: str) -> Optional[FlightEvent]:
        """Newest event of ``kind`` (None when the ring holds none)."""
        for event in reversed(self._ring):
            if event[1] == kind:
                return event
        return None

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    # --------------------------------------------------------- serialization

    def to_dicts(self) -> List[dict]:
        """The ring as JSON-ready dicts, oldest first (the bundle format)."""
        return [
            {"t": time, "kind": kind, "args": list(args)}
            for time, kind, args in self._ring
        ]


class _NullFlightRecorder:
    """Shared no-op stand-in when the flight recorder is off."""

    __slots__ = ()

    enabled = False
    capacity = 0
    dropped = 0

    def record(self, kind: str, *args) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def events(self) -> List[FlightEvent]:
        return []

    def tail(self, n: int) -> List[FlightEvent]:
        return []

    def select(self, kind: str) -> List[FlightEvent]:
        return []

    def last(self, kind: str) -> Optional[FlightEvent]:
        return None

    def clear(self) -> None:
        pass

    def to_dicts(self) -> List[dict]:
        return []


NULL_FLIGHT = _NullFlightRecorder()
