"""Unified observability layer: metrics, spans, Chrome traces, NDJSON logs.

One :class:`Observability` object per simulated system bundles the four
instruments the fault-path analysis needs:

* :class:`~repro.obs.metrics.MetricsRegistry` — run-level counters, gauges,
  and histograms with labeled series (snapshot dict / Prometheus text);
* :class:`~repro.obs.spans.SpanProfiler` — nested phase spans recording
  simulated *and* host wall-clock time;
* :class:`~repro.obs.chrome_trace.ChromeTraceBuilder` — the run as a
  Perfetto/``chrome://tracing`` timeline;
* :class:`~repro.obs.sinks.NdjsonSink` — structured per-batch / per-event
  log lines (the paper's "system log", machine-readable).

Enablement comes from :class:`~repro.config.ObsConfig`; every instrument is
independently switchable and near-zero-cost when off.  Multi-GPU systems
share one ``Observability`` across engines and give each device a scoped
view (:meth:`Observability.scoped`) so its trace tracks land in a separate
process group.
"""

from __future__ import annotations

from typing import Optional

from .catalog import (
    METRIC_CATALOG,
    SPAN_CATALOG,
    declared_label_keys,
    metric_declaration,
    validate_registry,
)
from .chrome_trace import (
    ChromeTraceBuilder,
    PID_COPY_ENGINE,
    PID_DRIVER,
    PID_EVICTION,
    PID_KERNEL,
    PID_PEER,
    PID_SM,
    TID_BATCH,
    TID_PHASE,
    TID_VABLOCK,
)
from .flight import NULL_FLIGHT, FlightRecorder
from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS_USEC,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NULL_INSTRUMENT,
)
from .sinks import NdjsonSink, read_ndjson
from .spans import NULL_SPAN, SpanProfiler, SpanRecord


class Observability:
    """Facade bundling one system's metrics, spans, trace, and log sink."""

    def __init__(self, config, clock, pid_base: int = 0, label: str = "") -> None:
        """``config`` is an :class:`~repro.config.ObsConfig`; ``clock`` the
        system's shared :class:`~repro.sim.clock.SimClock`."""
        self.config = config
        self.clock = clock
        self.pid_base = pid_base
        self.label = label
        self.metrics = MetricsRegistry(enabled=config.metrics)
        self.spans = SpanProfiler(clock, enabled=config.spans, max_spans=config.max_spans)
        self.chrome = ChromeTraceBuilder(
            enabled=config.chrome_trace, max_events=config.chrome_max_events
        )
        self.sink: Optional[NdjsonSink] = (
            NdjsonSink(config.ndjson_path) if config.ndjson_path else None
        )
        self.flight = (
            FlightRecorder(clock, config.flight_cap)
            if config.flight_recorder
            else NULL_FLIGHT
        )
        if self.chrome.enabled:
            self.chrome.register_tracks(pid_base, label)

    # ------------------------------------------------------------- scoping

    def scoped(self, pid_base: int, label: str) -> "Observability":
        """A per-device view sharing every instrument but with offset trace
        pids, so multi-GPU devices render as separate process groups."""
        view = object.__new__(Observability)
        view.config = self.config
        view.clock = self.clock
        view.pid_base = pid_base
        view.label = label
        view.metrics = self.metrics
        view.spans = self.spans
        view.chrome = self.chrome
        view.sink = self.sink
        view.flight = self.flight
        if view.chrome.enabled:
            view.chrome.register_tracks(pid_base, label)
        return view

    def pid(self, subsystem_pid: int) -> int:
        """Trace pid for a subsystem constant, offset for this device."""
        return self.pid_base + subsystem_pid

    # ---------------------------------------------------------- delegation

    def span(self, name: str, category: str = "driver", **args):
        """Shorthand for ``obs.spans.span(...)``."""
        return self.spans.span(name, category, **args)

    @property
    def any_enabled(self) -> bool:
        return (
            self.metrics.enabled
            or self.spans.enabled
            or self.chrome.enabled
            or self.sink is not None
        )

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Flush and close the NDJSON sink (other instruments are in-memory)."""
        if self.sink is not None:
            self.sink.close()


__all__ = [
    "Observability",
    "METRIC_CATALOG",
    "SPAN_CATALOG",
    "declared_label_keys",
    "metric_declaration",
    "validate_registry",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_INSTRUMENT",
    "DEFAULT_TIME_BUCKETS_USEC",
    "DEFAULT_COUNT_BUCKETS",
    "SpanProfiler",
    "SpanRecord",
    "NULL_SPAN",
    "FlightRecorder",
    "NULL_FLIGHT",
    "ChromeTraceBuilder",
    "NdjsonSink",
    "read_ndjson",
    "PID_DRIVER",
    "PID_COPY_ENGINE",
    "PID_SM",
    "PID_EVICTION",
    "PID_PEER",
    "PID_KERNEL",
    "TID_BATCH",
    "TID_VABLOCK",
    "TID_PHASE",
]
