"""Structured-log sinks: the paper's "logged to the system log", parseable.

The instrumented driver emits one log line per batch (§3.1); dmesg-style
text is hostile to analysis, so :class:`NdjsonSink` writes newline-delimited
JSON instead — one self-describing object per line, streamable and
append-only.  Batch records, trace events, and arbitrary dict payloads share
one file, discriminated by a ``type`` field.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Optional, Union


class NdjsonSink:
    """Newline-delimited JSON writer for batch records and trace events."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[str]] = self.path.open("w", encoding="utf-8")
        self.lines_written = 0

    # ------------------------------------------------------------- writing

    def write(self, obj: dict) -> None:
        """Write one JSON object as one line."""
        if self._fh is None:
            raise ValueError(f"sink {self.path} is closed")
        self._fh.write(json.dumps(obj) + "\n")
        self.lines_written += 1

    def write_batch_record(self, record) -> None:
        """Log one :class:`~repro.core.batch_record.BatchRecord`."""
        payload = {"type": "batch_record"}
        payload.update(record.to_dict())
        self.write(payload)

    def write_trace_event(self, time: float, category: str, payload) -> None:
        """Log one :class:`~repro.sim.trace.EventTrace` event."""
        self.write(
            {
                "type": "event",
                "time": time,
                "category": category,
                "payload": list(payload),
            }
        )

    # ----------------------------------------------------------- lifecycle

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None

    def __enter__(self) -> "NdjsonSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_ndjson(path: Union[str, Path]):
    """Parse every line of an NDJSON file (convenience for analysis/tests)."""
    out = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
