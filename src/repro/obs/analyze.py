"""Post-hoc report engine: ``uvm-repro analyze`` over logs and bundles.

The observability layer produces three durable artifacts — per-batch NDJSON
logs (:class:`~repro.obs.sinks.NdjsonSink`), campaign row files
(:func:`~repro.campaign.runner.to_ndjson`), and crash bundles
(:mod:`repro.obs.bundle`).  This module turns any of them into an analysis
report without re-running the simulation:

* **fault-latency percentiles** — exact p50/p95/p99 over batch service
  durations (the log has every sample; no histogram-bucket interpolation);
* **per-phase stall attribution** — the paper's §6 decomposition: while the
  driver services a batch the GPU is stalled, so each ``time_*`` component's
  share of total batch time is its share of GPU stall;
* **detectors** — overflow storms (consecutive batches dropping faults at
  the buffer flush, §4's overflow feedback loop) and migration thrashing
  (sustained evict-while-migrating windows, §5.1's pressure pathology);
* **A/B diff** — two reports compared leaf-by-leaf with a relative
  tolerance, the primitive behind ``analyze --diff`` and the
  ``bench --check`` perf-regression gate.

Everything here is pure post-processing: dict in, dict out, renderable as
ASCII.  Nothing imports the simulator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .bundle import EVENTS_NAME, is_bundle_dir, read_manifest

#: BatchRecord component timers, in fault-path order (Fig 7's stack).
PHASE_FIELDS = (
    "time_wake",
    "time_fetch",
    "time_preprocess",
    "time_block_base",
    "time_alloc",
    "time_eviction",
    "time_population",
    "time_dma",
    "time_unmap",
    "time_prefetch_decide",
    "time_migrate_prep",
    "time_transfer_h2d",
    "time_transfer_d2h",
    "time_pagetable",
    "time_replay",
    "time_retry_backoff",
)

#: Default relative tolerance for ``diff_reports`` (10 %).
DEFAULT_TOLERANCE = 0.10

#: Absolute wall-time ceiling for one whole-program lint run (all passes,
#: interprocedural fixpoints included).  Generous vs the ~2.5 s committed
#: baseline, but hard: a fixpoint that stops converging fails the gate
#: on any machine.
LINT_WALL_CEILING_SEC = 30.0


# ------------------------------------------------------------------ loading


def load_batch_records(path: Union[str, Path]) -> List[dict]:
    """Batch-record dicts from an observability NDJSON log.

    Accepts both sink logs (lines tagged ``"type": "batch_record"``) and
    campaign row files (per-cell summaries carry no batch records — those
    load as zero records, which :func:`build_report` reports as such).
    """
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("type") == "batch_record":
                records.append(obj)
    return records


def exact_percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Exact linear-interpolated percentile over raw samples."""
    if not values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError("percentile must be in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    lower = int(rank)
    frac = rank - lower
    if lower + 1 >= len(ordered):
        return ordered[-1]
    return ordered[lower] + (ordered[lower + 1] - ordered[lower]) * frac


# ---------------------------------------------------------------- detectors


def detect_overflow_storms(records: List[dict], min_batches: int = 3) -> List[dict]:
    """Runs of ``min_batches``+ consecutive batches dropping faults at the
    flush — the fault buffer persistently overflowing (§4: dropped faults
    reissue, re-filling the buffer, which drops more)."""
    storms = []
    run: List[dict] = []
    for record in records:
        if record.get("dropped_at_flush", 0) > 0:
            run.append(record)
            continue
        if len(run) >= min_batches:
            storms.append(_storm(run))
        run = []
    if len(run) >= min_batches:
        storms.append(_storm(run))
    return storms


def _storm(run: List[dict]) -> dict:
    return {
        "start_batch": run[0]["batch_id"],
        "end_batch": run[-1]["batch_id"],
        "batches": len(run),
        "dropped_faults": sum(r.get("dropped_at_flush", 0) for r in run),
    }


def detect_thrashing(
    records: List[dict], min_batches: int = 4, evict_ratio: float = 0.5
) -> List[dict]:
    """Sustained evict-while-migrating windows: ``min_batches``+ consecutive
    batches each evicting at least ``evict_ratio`` of the pages they
    migrate in — memory pressure forcing the working set back out as fast
    as it arrives (§5.1)."""
    windows = []
    run: List[dict] = []
    for record in records:
        migrated = record.get("pages_migrated_h2d", 0)
        evicted = record.get("pages_evicted", 0)
        if migrated > 0 and evicted >= evict_ratio * migrated:
            run.append(record)
            continue
        if len(run) >= min_batches:
            windows.append(_thrash_window(run))
        run = []
    if len(run) >= min_batches:
        windows.append(_thrash_window(run))
    return windows


def _thrash_window(run: List[dict]) -> dict:
    return {
        "start_batch": run[0]["batch_id"],
        "end_batch": run[-1]["batch_id"],
        "batches": len(run),
        "pages_migrated": sum(r.get("pages_migrated_h2d", 0) for r in run),
        "pages_evicted": sum(r.get("pages_evicted", 0) for r in run),
    }


# ------------------------------------------------------------------ reports


def build_report(records: List[dict]) -> dict:
    """The full analysis report for one run's batch records."""
    durations = [r.get("duration", 0.0) for r in records]
    total_usec = sum(durations)
    fault_batches = [r for r in records if not r.get("hinted", False)]
    stall_usec = sum(r.get("duration", 0.0) for r in fault_batches)
    phases = {}
    for name in PHASE_FIELDS:
        usec = sum(r.get(name, 0.0) for r in records)
        phases[name[5:]] = {
            "usec": usec,
            "frac": usec / total_usec if total_usec > 0 else 0.0,
        }
    transfer_usec = phases["transfer_h2d"]["usec"] + phases["transfer_d2h"]["usec"]
    return {
        "batches": len(records),
        "aborted": sum(1 for r in records if r.get("aborted", False)),
        "hinted": sum(1 for r in records if r.get("hinted", False)),
        "faults": sum(r.get("num_faults_raw", 0) for r in records),
        "total_batch_usec": total_usec,
        "fault_latency_usec": {
            "p50": exact_percentile(durations, 0.50),
            "p95": exact_percentile(durations, 0.95),
            "p99": exact_percentile(durations, 0.99),
            "mean": total_usec / len(records) if records else None,
            "max": max(durations) if durations else None,
        },
        "phases": phases,
        "gpu_stall": {
            # §6: fault batches stall the SMs end-to-end; hinted batches
            # run before launch, so only fault-batch time is stall time.
            "stall_usec": stall_usec,
            # Of the stall, how much is wire time (the ≤25 % of Fig 7) vs
            # driver management overhead (the rest).
            "transfer_frac": transfer_usec / total_usec if total_usec > 0 else 0.0,
            "management_frac": (
                (total_usec - transfer_usec) / total_usec if total_usec > 0 else 0.0
            ),
        },
        "detectors": {
            "overflow_storms": detect_overflow_storms(records),
            "thrashing": detect_thrashing(records),
        },
    }


def analyze_bundle(bundle_dir: Union[str, Path]) -> dict:
    """Post-mortem view of one crash bundle: the error, the failing batch,
    and the flight-recorder tail leading up to it."""
    bundle_dir = Path(bundle_dir)
    manifest = read_manifest(bundle_dir)
    events = []
    events_path = bundle_dir / EVENTS_NAME
    if events_path.is_file():
        with events_path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    error = manifest.get("error") or {}
    failing_batch = error.get("batch_id")
    if failing_batch is None:
        # Fall back to the newest batch the flight ring opened.
        for event in reversed(events):
            if event.get("kind") == "batch.open":
                failing_batch = event["args"][0]
                break
    return {
        "bundle": str(bundle_dir),
        "schema": manifest.get("schema"),
        "error": manifest.get("error"),
        "failing_batch": failing_batch,
        "clock_usec": manifest.get("clock_usec"),
        "kernel": manifest.get("kernel"),
        "seed": manifest.get("seed"),
        "batches_logged": manifest.get("batches_logged"),
        "checkpoint": manifest.get("checkpoint"),
        "event_tail": events[-10:],
    }


def analyze_path(path: Union[str, Path]) -> Tuple[str, dict]:
    """Analyze a bundle directory or an NDJSON log; returns (kind, report)
    with ``kind`` in {"bundle", "records"}."""
    if is_bundle_dir(path):
        return "bundle", analyze_bundle(path)
    return "records", build_report(load_batch_records(path))


# --------------------------------------------------------------------- diff


def _numeric_leaves(obj, prefix: str = "") -> Dict[str, float]:
    """Flatten nested dicts to dotted-path → numeric value (bools/lists and
    non-numeric leaves are skipped; detector lists are compared by count)."""
    leaves: Dict[str, float] = {}
    if isinstance(obj, dict):
        for key in obj:
            leaves.update(_numeric_leaves(obj[key], f"{prefix}{key}."))
    elif isinstance(obj, list):
        leaves[prefix[:-1] + ".count"] = float(len(obj))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        leaves[prefix[:-1]] = float(obj)
    return leaves


def diff_reports(
    report_a: dict, report_b: dict, tolerance: float = DEFAULT_TOLERANCE
) -> dict:
    """Leaf-by-leaf comparison of two reports (B relative to A).

    A *change* is a numeric leaf whose relative delta exceeds ``tolerance``
    (absolute delta for zero baselines), or a leaf present on only one
    side.  ``identical`` means no leaf moved at all; ``within_tolerance``
    means no change exceeded the threshold.
    """
    a = _numeric_leaves(report_a)
    b = _numeric_leaves(report_b)
    changes = []
    identical = True
    for key in sorted(set(a) | set(b)):
        if key not in a or key not in b:
            identical = False
            changes.append(
                {
                    "key": key,
                    "a": a.get(key),
                    "b": b.get(key),
                    "delta_rel": None,
                    "only_in": "a" if key in a else "b",
                }
            )
            continue
        va, vb = a[key], b[key]
        if va == vb:
            continue
        identical = False
        delta_rel = (vb - va) / abs(va) if va != 0 else None
        exceeded = (
            abs(delta_rel) > tolerance
            if delta_rel is not None
            else abs(vb - va) > tolerance
        )
        if exceeded:
            changes.append({"key": key, "a": va, "b": vb, "delta_rel": delta_rel})
    return {
        "tolerance": tolerance,
        "identical": identical,
        "within_tolerance": not changes,
        "changes": changes,
    }


# --------------------------------------------------------------- bench gate


def bench_gate(
    fresh: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> Tuple[bool, List[str]]:
    """Perf-regression gate: fresh ``bench_simperf`` results vs the
    committed baseline.  Returns (ok, human-readable problems).

    Checks, in order of trustworthiness:

    * determinism anchors — simulated batch count and final clock of the
      end-to-end run must match the baseline *exactly* (they are functions
      of (workload, config, seed), so any drift is a behavior change, not
      noise);
    * UVMSan timeline identity must still hold;
    * per-hot-path speedup ratios may not fall more than ``tolerance``
      below baseline (ratios of two local timings, so machine-speed
      differences largely cancel);
    * end-to-end wall time may not exceed 1.5× baseline (wall clocks are
      noisy across machines; 1.5× catches real slowdowns like an
      accidental O(n²), not scheduler jitter);
    * the whole-program lint may not exceed 1.5× its baseline wall time
      nor the absolute ``LINT_WALL_CEILING_SEC`` ceiling, so the
      interprocedural fixpoints (sim-taint, dimensions) stay interactive.
    """
    problems: List[str] = []

    fresh_e2e = fresh.get("end_to_end", {})
    base_e2e = baseline.get("end_to_end", {})
    for key in ("batches", "clock_usec"):
        if fresh_e2e.get(key) != base_e2e.get(key):
            problems.append(
                f"end_to_end.{key}: baseline {base_e2e.get(key)!r}, "
                f"fresh {fresh_e2e.get(key)!r} (determinism anchor moved)"
            )

    fresh_san = fresh.get("uvmsan", {})
    if fresh_san and not fresh_san.get("timeline_identical", True):
        problems.append("uvmsan.timeline_identical: sanitizer now perturbs the timeline")

    fresh_hot = fresh.get("hot_paths", {})
    base_hot = baseline.get("hot_paths", {})
    for name in sorted(base_hot):
        base_speedup = base_hot[name].get("speedup")
        fresh_speedup = fresh_hot.get(name, {}).get("speedup")
        if fresh_speedup is None:
            problems.append(f"hot_paths.{name}: missing from fresh run")
            continue
        floor = base_speedup * (1.0 - tolerance)
        if fresh_speedup < floor:
            problems.append(
                f"hot_paths.{name}.speedup: {fresh_speedup:.2f}x < "
                f"{floor:.2f}x floor (baseline {base_speedup:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )

    base_wall = base_e2e.get("wall_sec")
    fresh_wall = fresh_e2e.get("wall_sec")
    if base_wall and fresh_wall and fresh_wall > 1.5 * base_wall:
        problems.append(
            f"end_to_end.wall_sec: {fresh_wall:.2f}s > 1.5x baseline "
            f"({base_wall:.2f}s)"
        )

    # The whole-program lint (interprocedural fixpoints included) must
    # stay interactive: same 1.5x-vs-baseline rule as the end-to-end wall
    # time, plus an absolute ceiling so a runaway fixpoint fails even on
    # a machine with a slow committed baseline.
    base_lint = baseline.get("lint", {}).get("total_sec")
    fresh_lint = fresh.get("lint", {}).get("total_sec")
    if base_lint and fresh_lint and fresh_lint > 1.5 * base_lint:
        problems.append(
            f"lint.total_sec: {fresh_lint:.2f}s > 1.5x baseline "
            f"({base_lint:.2f}s)"
        )
    if fresh_lint and fresh_lint > LINT_WALL_CEILING_SEC:
        problems.append(
            f"lint.total_sec: {fresh_lint:.2f}s > absolute "
            f"{LINT_WALL_CEILING_SEC:.0f}s ceiling"
        )

    return (not problems, problems)


# ---------------------------------------------------------------- rendering


def render_report(report: dict, title: str = "analyze") -> str:
    """The records report as ASCII (same plain-table idiom as the chaos
    report)."""
    lines = [f"== {title} =="]
    lines.append(
        f"batches {report['batches']} ({report['hinted']} hinted, "
        f"{report['aborted']} aborted) | faults {report['faults']} | "
        f"batch time {report['total_batch_usec']:.1f}us"
    )
    lat = report["fault_latency_usec"]
    if lat["p50"] is not None:
        lines.append(
            "fault latency: "
            f"p50 {lat['p50']:.1f}us  p95 {lat['p95']:.1f}us  "
            f"p99 {lat['p99']:.1f}us  mean {lat['mean']:.1f}us  "
            f"max {lat['max']:.1f}us"
        )
    stall = report["gpu_stall"]
    lines.append(
        f"gpu stall {stall['stall_usec']:.1f}us | transfer "
        f"{stall['transfer_frac']:.1%} vs management "
        f"{stall['management_frac']:.1%} (paper Fig 7: transfers <= ~25%)"
    )
    lines.append("phase attribution:")
    phases = sorted(
        report["phases"].items(), key=lambda kv: kv[1]["usec"], reverse=True
    )
    for name, info in phases:
        if info["usec"] <= 0:
            continue
        lines.append(f"  {name:16s} {info['usec']:12.1f}us  {info['frac']:6.1%}")
    storms = report["detectors"]["overflow_storms"]
    thrash = report["detectors"]["thrashing"]
    for storm in storms:
        lines.append(
            f"overflow storm: batches {storm['start_batch']}-"
            f"{storm['end_batch']} dropped {storm['dropped_faults']} faults"
        )
    for window in thrash:
        lines.append(
            f"thrashing: batches {window['start_batch']}-{window['end_batch']} "
            f"evicted {window['pages_evicted']} of {window['pages_migrated']} "
            f"migrated pages"
        )
    if not storms and not thrash:
        lines.append("detectors: clean (no overflow storms, no thrashing)")
    return "\n".join(lines)


def render_bundle_report(report: dict) -> str:
    """The bundle post-mortem as ASCII."""
    lines = [f"== crash bundle: {report['bundle']} =="]
    error = report.get("error")
    if error:
        lines.append(f"error: {error['type']}: {error['message']}")
    else:
        lines.append("error: none recorded (on-demand snapshot)")
    lines.append(
        f"failing batch: {report['failing_batch']} | clock "
        f"{report['clock_usec']:.1f}us | kernel {report['kernel']} | "
        f"seed {report['seed']} | {report['batches_logged']} batches logged"
    )
    checkpoint = report.get("checkpoint")
    if checkpoint:
        lines.append(
            f"nearest checkpoint: batch {checkpoint['batches']} at "
            f"{checkpoint['clock_usec']:.1f}us ({checkpoint['file']})"
        )
    else:
        lines.append("nearest checkpoint: none captured")
    lines.append("flight-recorder tail:")
    for event in report["event_tail"]:
        args = " ".join(str(a) for a in event.get("args", []))
        lines.append(f"  {event['t']:12.1f}us  {event['kind']:16s} {args}")
    return "\n".join(lines)


def render_diff(diff: dict, label_a: str = "A", label_b: str = "B") -> str:
    """The A/B diff as ASCII."""
    if diff["identical"]:
        return f"reports identical ({label_a} == {label_b})"
    lines = [
        f"diff {label_a} -> {label_b} (tolerance {diff['tolerance']:.0%}): "
        + (
            "within tolerance"
            if diff["within_tolerance"]
            else f"{len(diff['changes'])} changes beyond tolerance"
        )
    ]
    for change in diff["changes"]:
        if change.get("only_in"):
            lines.append(f"  {change['key']}: only in {change['only_in']}")
            continue
        rel = change["delta_rel"]
        rel_text = f"{rel:+.1%}" if rel is not None else "n/a"
        lines.append(
            f"  {change['key']}: {change['a']:.4g} -> {change['b']:.4g} ({rel_text})"
        )
    return "\n".join(lines)
