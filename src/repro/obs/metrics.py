"""Lightweight metrics registry: counters, gauges, fixed-bucket histograms.

The paper's modified driver exposes "targeted high-precision timers and
event counters" (§3.1); :class:`MetricsRegistry` is the aggregate side of
that instrumentation — cumulative counters and distributions over a whole
run, complementing the per-batch :class:`~repro.core.batch_record.BatchRecord`.

Design goals:

* **near-zero cost when disabled** — a disabled registry hands out a shared
  null instrument whose ``inc``/``set``/``observe`` are no-ops, so call
  sites cache their handles once and never branch;
* **labeled series** — a family (one metric name) holds one child per label
  tuple, Prometheus-style (``uvm_pages_total{op="evicted"}``);
* **machine-readable export** — :meth:`MetricsRegistry.snapshot` returns a
  plain dict; :meth:`MetricsRegistry.to_prometheus` renders the
  Prometheus text exposition format for cross-run scraping/diffing.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError

#: Default histogram buckets for microsecond durations (fault-path scale:
#: tens of µs for small batches up to multi-ms eviction storms).
DEFAULT_TIME_BUCKETS_USEC: Tuple[float, ...] = (
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 100_000.0,
)

#: Default buckets for per-batch counts (batch sizes cap at a few thousand).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0,
)


def _validate_buckets(buckets: Sequence[float]) -> Tuple[float, ...]:
    bounds = tuple(float(b) for b in buckets)
    if not bounds or list(bounds) != sorted(set(bounds)):
        raise ConfigError("histogram buckets must be sorted, unique, non-empty")
    return bounds


class Counter:
    """Monotonically increasing value (one labeled series)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """Instantaneous value that can move in either direction."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    Bucket boundaries are upper bounds (``le``); an implicit +Inf bucket
    catches the tail.  Buckets are fixed at creation so ``observe`` is a
    bisect plus two adds — cheap enough for per-batch observation.
    """

    __slots__ = ("bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_USEC) -> None:
        self.bounds = _validate_buckets(buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # +Inf tail
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left keeps ``le`` inclusive (Prometheus semantics): a value
        # exactly on a bound lands in that bound's bucket.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def snapshot(self):
        cumulative = []
        running = 0
        for i, bound in enumerate(self.bounds):
            running += self.counts[i]
            cumulative.append({"le": bound, "count": running})
        cumulative.append({"le": float("inf"), "count": self.count})
        return {"buckets": cumulative, "sum": self.sum, "count": self.count}

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (Prometheus ``histogram_quantile``
        semantics: linear interpolation within the landing bucket, values in
        the +Inf tail clamp to the highest finite bound).  None when empty.

        >>> h = Histogram(buckets=(10.0, 20.0))
        >>> for v in (5.0, 15.0, 15.0, 15.0): h.observe(v)
        >>> h.quantile(0.5)
        15.0
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return None
        rank = q * self.count
        running = 0
        for i, bound in enumerate(self.bounds):
            prev = running
            running += self.counts[i]
            if running >= rank:
                if self.counts[i] == 0:
                    return bound
                lower = self.bounds[i - 1] if i > 0 else 0.0
                frac = (rank - prev) / self.counts[i]
                return lower + (bound - lower) * frac
        # Tail bucket: no finite upper edge to interpolate against.
        return self.bounds[-1]

    def quantiles(self, qs: Sequence[float] = (0.5, 0.95, 0.99)) -> Dict[str, Optional[float]]:
        """The standard latency percentiles as a ``{"p50": ...}`` dict."""
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}


class _NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, *values: str) -> "_NullInstrument":
        return self


NULL_INSTRUMENT = _NullInstrument()


class MetricFamily:
    """All series of one metric name (one per label-value tuple)."""

    __slots__ = ("name", "help", "kind", "label_names", "buckets", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = tuple(label_names)
        if kind == "histogram":
            buckets = _validate_buckets(
                buckets if buckets is not None else DEFAULT_TIME_BUCKETS_USEC
            )
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, *values) -> object:
        """The child series for ``values`` (created on first use)."""
        key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {key}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets or DEFAULT_TIME_BUCKETS_USEC)

    # Label-less convenience: a family used without labels delegates to its
    # single ()-child, so `registry.counter("x").inc()` just works.

    def _default(self):
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def series(self) -> Dict[Tuple[str, ...], object]:
        return dict(self._children)


class MetricsRegistry:
    """Registry of metric families; the run's aggregate instrument panel.

    >>> reg = MetricsRegistry()
    >>> reg.counter("uvm_batches_total", "Batches serviced").inc()
    >>> reg.snapshot()["uvm_batches_total"]["series"][0]["value"]
    1.0
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------- creation

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ):
        if not self.enabled:
            return NULL_INSTRUMENT
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ConfigError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family
        family = MetricFamily(name, kind, help, labels, buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        """Get or create a counter family (returns a null no-op when disabled)."""
        return self._register(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return self._register(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_USEC,
    ):
        return self._register(name, "histogram", help, labels, buckets)

    # --------------------------------------------------------------- export

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def family(self, name: str) -> MetricFamily:
        return self._families[name]

    def snapshot(self) -> Dict:
        """Plain-dict dump of every family and series (JSON-serializable)."""
        out: Dict = {}
        for name, family in sorted(self._families.items()):
            series = []
            for key, child in sorted(family.series.items()):
                series.append(
                    {
                        "labels": dict(zip(family.label_names, key)),
                        "value": child.snapshot(),
                    }
                )
            out[name] = {"kind": family.kind, "help": family.help, "series": series}
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one run = one scrape)."""
        lines: List[str] = []
        for name, family in sorted(self._families.items()):
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in sorted(family.series.items()):
                labels = _fmt_labels(family.label_names, key)
                if family.kind == "histogram":
                    snap = child.snapshot()
                    for bucket in snap["buckets"]:
                        le = "+Inf" if bucket["le"] == float("inf") else _fmt_num(bucket["le"])
                        extra = _fmt_labels(
                            family.label_names + ("le",), key + (le,)
                        )
                        lines.append(f"{name}_bucket{extra} {bucket['count']}")
                    lines.append(f"{name}_sum{labels} {_fmt_num(snap['sum'])}")
                    lines.append(f"{name}_count{labels} {snap['count']}")
                else:
                    lines.append(f"{name}{labels} {_fmt_num(child.snapshot())}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(f'{n}="{v}"' for n, v in zip(names, values))
    return "{" + pairs + "}"


def _fmt_num(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
