"""Declarative catalog of every metric family and span name the simulator
emits.

The registry API registers families lazily at call sites, which is
ergonomic but drift-prone: rename a family at its one registration site
and every dashboard, reconciliation identity, and cross-run diff silently
loses the series.  This module is the single declarative source of truth
the ``metric-drift`` whole-program pass (:mod:`repro.check.program`)
checks every call site in ``src/`` against:

* a family registered anywhere but missing here → ``metric-undeclared``;
* kind / label-key disagreement with the declaration → ``metric-mismatch``;
* an entry here that no call site emits → ``metric-unused``;
* a ``span(...)`` name missing from :data:`SPAN_CATALOG` →
  ``span-undeclared``;
* an entry with a missing or unknown ``unit`` → ``metric-no-unit``.

Every entry declares its measurement ``unit`` (one of
:data:`repro.check.program.dims.UNIT_VOCAB`): ``bytes``/``us``/``wall_s``
are strong dimensions the ``dimensions`` pass checks emission arguments
against, while count-like units (``pages``, ``faults``, ``batches``, …)
additionally reject any strongly-dimensioned argument — a page *id*
observed into a ``pages`` counter is a bug, not a count.

The pass parses this file *statically* (the dict literals below must stay
literals — no comprehensions, no computed keys).  A runtime cross-check in
``tests/unit/check/test_obs_catalog.py`` additionally runs a real workload
and asserts the registered families agree with these declarations, so the
catalog can drift from reality in neither direction.

When adding a metric: register it at the call site, declare it here with a
unit, done — CI's ``lint-program`` job fails on any half alone.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: family name → {"kind": counter|gauge|histogram, "labels": (keys...),
#: "help": one-liner, "unit": measurement unit}.  Keep alphabetical; keep
#: values literal.
METRIC_CATALOG: Dict[str, dict] = {
    "uvm_batch_faults": {
        "kind": "histogram",
        "labels": (),
        "help": "Raw faults per batch",
        "unit": "faults",
    },
    "uvm_batch_service_usec": {
        "kind": "histogram",
        "labels": (),
        "help": "Batch servicing time (simulated us)",
        "unit": "us",
    },
    "uvm_batches_total": {
        "kind": "counter",
        "labels": ("kind",),
        "help": "Batches through the servicing path",
        "unit": "batches",
    },
    "uvm_bundles_written_total": {
        "kind": "counter",
        "labels": (),
        "help": "Crash bundles written",
        "unit": "bundles",
    },
    "uvm_bytes_total": {
        "kind": "counter",
        "labels": ("dir",),
        "help": "Bytes migrated over the interconnect",
        "unit": "bytes",
    },
    "uvm_ce_bursts_total": {
        "kind": "counter",
        "labels": ("dir",),
        "help": "Copy-engine burst operations",
        "unit": "bursts",
    },
    "uvm_ce_bytes_total": {
        "kind": "counter",
        "labels": ("dir",),
        "help": "Bytes moved by the copy engines",
        "unit": "bytes",
    },
    "uvm_ce_failovers_total": {
        "kind": "counter",
        "labels": (),
        "help": "Copy-engine failovers after stuck bursts",
        "unit": "count",
    },
    "uvm_crash_recoveries_total": {
        "kind": "counter",
        "labels": (),
        "help": "Injected crashes recovered from a checkpoint",
        "unit": "recoveries",
    },
    "uvm_degrade_total": {
        "kind": "counter",
        "labels": ("kind",),
        "help": "Graceful degradations on the fault path",
        "unit": "count",
    },
    "uvm_engine_rounds_total": {
        "kind": "counter",
        "labels": (),
        "help": "GPU fault-generation rounds",
        "unit": "rounds",
    },
    "uvm_evictions_total": {
        "kind": "counter",
        "labels": ("policy",),
        "help": "VABlocks evicted from device memory",
        "unit": "evictions",
    },
    "uvm_faults_total": {
        "kind": "counter",
        "labels": ("kind",),
        "help": "Faults fetched from the HW buffer",
        "unit": "faults",
    },
    "uvm_fleet_kills_total": {
        "kind": "counter",
        "labels": ("signal",),
        "help": "Worker kill escalations by signal",
        "unit": "kills",
    },
    "uvm_fleet_ledger_writes_total": {
        "kind": "counter",
        "labels": (),
        "help": "Run-ledger mutations committed",
        "unit": "writes",
    },
    "uvm_fleet_resumes_total": {
        "kind": "counter",
        "labels": (),
        "help": "Jobs resumed from an engine checkpoint",
        "unit": "resumes",
    },
    "uvm_fleet_retries_total": {
        "kind": "counter",
        "labels": ("class",),
        "help": "Fleet-level job retries by failure class",
        "unit": "retries",
    },
    "uvm_hostos_total": {
        "kind": "counter",
        "labels": ("op",),
        "help": "Host-OS operations on the fault path",
        "unit": "ops",
    },
    "uvm_injected_total": {
        "kind": "counter",
        "labels": ("site",),
        "help": "Injected faults by site",
        "unit": "faults",
    },
    "uvm_kernel_time_usec": {
        "kind": "histogram",
        "labels": (),
        "help": "Kernel wall time (simulated us)",
        "unit": "us",
    },
    "uvm_kernels_total": {
        "kind": "counter",
        "labels": (),
        "help": "Kernel launches run",
        "unit": "kernels",
    },
    "uvm_pages_total": {
        "kind": "counter",
        "labels": ("op",),
        "help": "Pages handled on the fault path",
        "unit": "pages",
    },
    "uvm_peer_pages_total": {
        "kind": "counter",
        "labels": ("mode",),
        "help": "Pages moved between devices",
        "unit": "pages",
    },
    "uvm_peer_time_usec_total": {
        "kind": "counter",
        "labels": ("mode",),
        "help": "Simulated time spent on cross-device migration",
        "unit": "us",
    },
    "uvm_resident_vablocks": {
        "kind": "gauge",
        "labels": (),
        "help": "GPU-allocated VABlocks tracked by the eviction policy",
        "unit": "vablocks",
    },
    "uvm_retries_total": {
        "kind": "counter",
        "labels": ("site",),
        "help": "Driver retries after transient fault-path failures",
        "unit": "retries",
    },
    "uvm_san_violations_total": {
        "kind": "counter",
        "labels": ("rule",),
        "help": "UVMSan invariant violations detected",
        "unit": "violations",
    },
}

#: span name → {"help": one-line description, "unit": duration unit}.
#: Covers ``obs.span(...)`` / ``spans.span(...)`` context spans and the
#: manual ``spans.record(...)`` replayed spans.  Every span duration is
#: simulated microseconds.  Keep alphabetical; keep literal.
SPAN_CATALOG: Dict[str, dict] = {
    "driver.batch": {
        "help": "one batch envelope, reconciled against BatchRecord",
        "unit": "us",
    },
    "driver.fetch": {
        "help": "drain the HW fault buffer into the batch",
        "unit": "us",
    },
    "driver.preprocess": {
        "help": "dedup/sort/group faults into VABlock work",
        "unit": "us",
    },
    "driver.replay": {
        "help": "replay the stalled warps after servicing",
        "unit": "us",
    },
    "driver.vablock": {
        "help": "per-VABlock servicing slice (manual span)",
        "unit": "us",
    },
    "driver.wake": {
        "help": "batch-trigger wakeup latency",
        "unit": "us",
    },
    "engine.host_touch": {
        "help": "CPU-side touch of managed pages",
        "unit": "us",
    },
    "engine.launch": {
        "help": "one kernel launch end-to-end",
        "unit": "us",
    },
    "engine.resume": {
        "help": "resume a kernel after checkpoint restore",
        "unit": "us",
    },
}


def metric_declaration(name: str) -> dict:
    """The declaration for ``name`` (raises KeyError when undeclared)."""
    return METRIC_CATALOG[name]


def declared_label_keys(name: str) -> Tuple[str, ...]:
    return tuple(METRIC_CATALOG[name]["labels"])


def validate_registry(registry) -> list:
    """Runtime cross-check: every family a live registry holds must match
    its declaration.  Returns human-readable problem strings (empty = ok).

    Used by the catalog unit test after a real workload run, closing the
    loop the static pass cannot: the pass proves call sites agree with the
    catalog, this proves the *runtime* registry does too.
    """
    problems = []
    snapshot = registry.snapshot()
    for name in sorted(snapshot):
        decl = METRIC_CATALOG.get(name)
        family = registry.family(name)
        if decl is None:
            problems.append(f"{name}: registered at runtime but undeclared")
            continue
        if family.kind != decl["kind"]:
            problems.append(
                f"{name}: declared {decl['kind']}, registered {family.kind}"
            )
        if tuple(family.label_names) != tuple(decl["labels"]):
            problems.append(
                f"{name}: declared labels {tuple(decl['labels'])!r}, "
                f"registered {tuple(family.label_names)!r}"
            )
        if not decl.get("unit"):
            problems.append(f"{name}: declaration carries no unit")
    return problems
