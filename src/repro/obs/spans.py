"""Context-manager span profiler: simulated *and* wall-clock phase timing.

The paper wraps driver routines in "targeted high-precision timers" (§3.1).
:class:`SpanProfiler` is the structured version: a ``with`` block per phase
records how much *simulated* time the phase advanced the
:class:`~repro.sim.clock.SimClock` and how much *host wall-clock* time the
simulator itself spent there (``time.perf_counter``), so one profile answers
both "where does the modeled fault path spend its time" and "where does the
simulation spend mine".

Spans nest (depth is tracked per thread) and the profiler is thread-safe by
construction: each thread gets its own span stack via ``threading.local``
and completed spans are appended under a lock, so engines running in worker
threads never share mutable span state.

Driver phases whose cost is accumulated first and applied to the clock later
(the per-VABlock path) use :meth:`SpanProfiler.record` to log manual spans
with explicit start/duration.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    #: Coarse grouping used for Chrome-trace track routing ("driver",
    #: "engine", "ce", ...).
    category: str
    #: Simulated start time (µs) and duration (µs).
    sim_start: float
    sim_dur: float
    #: Host wall-clock duration (µs) spent inside the span, 0 for manual
    #: spans replayed from accumulated costs.
    wall_dur: float
    #: Nesting depth at completion (0 = top level).
    depth: int
    #: ``threading.get_ident()`` of the recording thread.
    thread_id: int
    #: Free-form attributes (batch id, block id, ...).
    args: Tuple[Tuple[str, object], ...] = ()

    @property
    def sim_end(self) -> float:
        return self.sim_start + self.sim_dur

    def args_dict(self) -> Dict[str, object]:
        return dict(self.args)


class _NullSpan:
    """No-op context manager returned by a disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class _Span:
    """Live context-manager span; becomes a :class:`SpanRecord` on exit."""

    __slots__ = ("_profiler", "name", "category", "args", "_sim_start", "_wall_start")

    def __init__(self, profiler: "SpanProfiler", name: str, category: str, args) -> None:
        self._profiler = profiler
        self.name = name
        self.category = category
        self.args = args

    def __enter__(self) -> "_Span":
        stack = self._profiler._stack()
        stack.append(self)
        self._sim_start = self._profiler.clock.now
        self._wall_start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        profiler = self._profiler
        wall_dur = (time.perf_counter() - self._wall_start) * 1e6
        stack = profiler._stack()
        stack.pop()
        profiler._append(
            SpanRecord(
                name=self.name,
                category=self.category,
                sim_start=self._sim_start,
                sim_dur=profiler.clock.now - self._sim_start,
                wall_dur=wall_dur,
                depth=len(stack),
                thread_id=threading.get_ident(),
                args=self.args,
            )
        )


class SpanProfiler:
    """Collects :class:`SpanRecord` from clock-advancing ``with`` blocks and
    manual ``record`` calls."""

    def __init__(
        self,
        clock,
        enabled: bool = True,
        max_spans: Optional[int] = None,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------ recording

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            if self.max_spans is not None and len(self._records) >= self.max_spans:
                self.dropped += 1
                return
            self._records.append(record)

    def span(self, name: str, category: str = "driver", **args):
        """A context manager timing the enclosed block (no-op when disabled).

        >>> from repro.sim.clock import SimClock
        >>> clock = SimClock(); profiler = SpanProfiler(clock)
        >>> with profiler.span("fetch"):
        ...     _ = clock.advance(3.0)
        >>> profiler.records[0].sim_dur
        3.0
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, category, tuple(args.items()))

    def record(
        self,
        name: str,
        category: str = "driver",
        sim_start: float = 0.0,
        sim_dur: float = 0.0,
        wall_dur: float = 0.0,
        depth: int = 0,
        **args,
    ) -> None:
        """Log a manual span with explicit timing (for phases whose cost is
        accumulated before the clock advances, e.g. per-VABlock service)."""
        if not self.enabled:
            return
        self._append(
            SpanRecord(
                name=name,
                category=category,
                sim_start=sim_start,
                sim_dur=sim_dur,
                wall_dur=wall_dur,
                depth=depth,
                thread_id=threading.get_ident(),
                args=tuple(args.items()),
            )
        )

    # -------------------------------------------------------------- queries

    @property
    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def select(self, name: str) -> List[SpanRecord]:
        return [r for r in self.records if r.name == name]

    def totals(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregate: span count, simulated µs, wall-clock µs."""
        out: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            agg = out.setdefault(
                record.name, {"count": 0, "sim_usec": 0.0, "wall_usec": 0.0}
            )
            agg["count"] += 1
            agg["sim_usec"] += record.sim_dur
            agg["wall_usec"] += record.wall_dur
        return out

    def sim_total(self, name: str) -> float:
        """Total simulated time across all spans named ``name``."""
        return sum(r.sim_dur for r in self.records if r.name == name)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0
