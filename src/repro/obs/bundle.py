"""Crash bundles: one self-contained diagnostic directory per failure.

When a run dies — an unhandled :class:`~repro.errors.UvmError`, a raise-mode
:class:`~repro.errors.InvariantViolation`, or an unrecovered injected crash —
the engine writes a *bundle*: everything a post-mortem needs, frozen at the
moment of death, in one directory.  ``uvm-repro analyze <bundle>`` reads it
back and names the failing batch; CI uploads bundles as artifacts from the
chaos job so a red run carries its own forensics.

Bundle layout (schema: ``docs/schemas/bundle.schema.json``)::

    <dir>/
      manifest.json    error, clock, seed, RNG state, checkpoint ref, file map
      config.json      full SystemConfig snapshot (dataclasses.asdict)
      events.ndjson    the flight-recorder ring, oldest first
      metrics.json     MetricsRegistry.snapshot()
      spans.json       SpanProfiler.totals()
      checkpoint.bin   latest auto-checkpoint pickle (only when one exists)

Every byte is a function of simulated state — no wall-clock timestamps, no
hostnames — so two equal-seed crashes produce byte-identical event dumps
(the determinism property the bundle tests pin).
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
from pathlib import Path
from typing import Optional, Union

#: Manifest ``schema`` identifier; bump on incompatible layout changes.
BUNDLE_SCHEMA = "uvm-repro-bundle/1"

#: Filenames inside every bundle directory.
MANIFEST_NAME = "manifest.json"
CONFIG_NAME = "config.json"
EVENTS_NAME = "events.ndjson"
METRICS_NAME = "metrics.json"
SPANS_NAME = "spans.json"
CHECKPOINT_NAME = "checkpoint.bin"


def _error_info(error: BaseException) -> dict:
    """Structured view of the exception that killed the run."""
    info: dict = {
        "type": type(error).__name__,
        "message": str(error),
    }
    for attr, key in (
        ("batch_id", "batch_id"),
        ("clock_usec", "clock_usec"),
        ("rule", "rule"),
        ("site", "site"),
        ("attempts", "attempts"),
    ):
        value = getattr(error, attr, None)
        if value is not None:
            info[key] = value
    context = getattr(error, "context", None)
    if context:
        info["context"] = dict(context)
    return info


def _dump_json(path: Path, payload) -> None:
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )


def _finalize_bundle(directory: Path, manifest: dict) -> None:
    """Land ``manifest.json`` atomically — the write that *makes* the
    directory a bundle.

    :func:`read_manifest` (and ``uvm-repro analyze``) key off the manifest,
    so it must appear whole or not at all: a crash mid-write must not leave
    a truncated manifest that parses as garbage or half a bundle that looks
    finished.  Everything else in the directory is written first; this
    rename is the commit point.
    """
    tmp = directory / (MANIFEST_NAME + ".tmp")
    try:
        tmp.write_text(
            json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, directory / MANIFEST_NAME)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def unique_bundle_dir(base: Union[str, Path], name: str) -> Path:
    """``base/name``, suffixed ``-2``, ``-3``, ... if already taken."""
    base = Path(base)
    candidate = base / name
    seq = 1
    while candidate.exists():
        seq += 1
        candidate = base / f"{name}-{seq}"
    return candidate


def write_bundle(
    directory: Union[str, Path],
    engine,
    error: Optional[BaseException] = None,
    label: str = "crash",
) -> Path:
    """Write one diagnostic bundle for ``engine`` into ``directory``.

    ``directory`` is created (parents included); existing contents are not
    permitted — callers pick a fresh path (see :func:`unique_bundle_dir`).
    ``error`` is the exception on whose way out the bundle is written (None
    for on-demand snapshots).  Returns the bundle directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=False)
    try:
        manifest = _write_bundle_contents(directory, engine, error, label)
        _finalize_bundle(directory, manifest)
    except BaseException:
        # A failure partway through (disk full, unpicklable RNG state, …)
        # must not leave a half-written directory that analyze mistakes
        # for a bundle — remove the whole thing and let the error out.
        shutil.rmtree(directory, ignore_errors=True)
        raise
    return directory


def _write_bundle_contents(
    directory: Path,
    engine,
    error: Optional[BaseException],
    label: str,
) -> dict:
    obs = engine.obs
    flight = obs.flight
    config = engine.config

    with (directory / EVENTS_NAME).open("w", encoding="utf-8") as fh:
        for event in flight.to_dicts():
            fh.write(json.dumps(event, sort_keys=True) + "\n")

    _dump_json(directory / CONFIG_NAME, dataclasses.asdict(config))
    _dump_json(directory / METRICS_NAME, obs.metrics.snapshot())
    _dump_json(directory / SPANS_NAME, obs.spans.totals())

    checkpoint_ref = None
    auto = getattr(engine, "_auto_checkpoint", None)
    if auto is not None:
        (directory / CHECKPOINT_NAME).write_bytes(auto.to_bytes())
        checkpoint_ref = dict(auto.summary())
        checkpoint_ref["file"] = CHECKPOINT_NAME

    progress = getattr(engine, "_progress", None)
    driver_rng = engine.driver.rng
    manifest = {
        "schema": BUNDLE_SCHEMA,
        "label": label,
        "error": _error_info(error) if error is not None else None,
        "clock_usec": engine.clock.now,
        "seed": config.seed,
        "kernel": progress.name if progress is not None else None,
        "batches_logged": len(engine.driver.log),
        "last_batch_id": engine.driver.log.records[-1].batch_id
        if len(engine.driver.log)
        else None,
        "flight": {
            "capacity": flight.capacity,
            "recorded": len(flight),
            "dropped": flight.dropped,
        },
        "rng": {
            "engine": engine.rng.bit_generator.state,
            "driver": driver_rng.bit_generator.state
            if driver_rng is not None
            else None,
        },
        "injection": engine.injector.summary(),
        "sanitizer": engine.sanitizer.summary(),
        "checkpoint": checkpoint_ref,
        "files": {
            "config": CONFIG_NAME,
            "events": EVENTS_NAME,
            "metrics": METRICS_NAME,
            "spans": SPANS_NAME,
        },
    }
    return manifest


def read_manifest(bundle_dir: Union[str, Path]) -> dict:
    """Parse a bundle directory's manifest (raises on a non-bundle path)."""
    path = Path(bundle_dir) / MANIFEST_NAME
    with path.open("r", encoding="utf-8") as fh:
        return json.load(fh)


def is_bundle_dir(path: Union[str, Path]) -> bool:
    return (Path(path) / MANIFEST_NAME).is_file()
