"""Chrome trace-event export: the fault path on a Perfetto timeline.

Renders a run as the Trace Event Format JSON consumed by Perfetto and
``chrome://tracing``.  Track layout (one "process" per subsystem):

* **UVM driver** (pid 1) — batch envelopes on one row, per-VABlock service
  slices on a second, intra-block phases (alloc/DMA/unmap/transfer/...) on a
  third; replay instants ride on the batch row;
* **Copy engine** (pid 2) — one duration slice per copy-engine burst,
  labeled with direction, bytes, and run count;
* **SMs** (pid 3) — per-SM warp-compute ("run") slices, per-fault instant
  events on the issuing SM's row, and an aggregate "stall" row covering
  driver servicing windows (§6: the GPU is stalled while the driver works);
* **Eviction** (pid 4) — one slice per VABlock eviction;
* **Peer** (pid 5) — multi-GPU peer/bounce migrations;
* **Kernels** (pid 6) — one envelope slice per kernel launch.

Timestamps are simulated microseconds, which is exactly the unit the trace
format expects, so simulated time maps 1:1 onto the viewer's timeline.
Multi-GPU systems offset each device's pids by ``pid_base`` so devices show
as separate process groups.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

#: Subsystem process ids (offset by the device's ``pid_base`` in multi-GPU).
PID_DRIVER = 1
PID_COPY_ENGINE = 2
PID_SM = 3
PID_EVICTION = 4
PID_PEER = 5
PID_KERNEL = 6

PROCESS_NAMES = {
    PID_KERNEL: "Kernels",
    PID_DRIVER: "UVM driver",
    PID_COPY_ENGINE: "Copy engine",
    PID_SM: "SMs",
    PID_EVICTION: "Eviction",
    PID_PEER: "Peer transfers",
}

#: Driver-process rows.
TID_BATCH = 0
TID_VABLOCK = 1
TID_PHASE = 2

DRIVER_THREAD_NAMES = {
    TID_BATCH: "batches",
    TID_VABLOCK: "vablocks",
    TID_PHASE: "phases",
}


class ChromeTraceBuilder:
    """Accumulates trace events and serializes Trace Event Format JSON."""

    def __init__(self, enabled: bool = True, max_events: int = 1_000_000) -> None:
        self.enabled = enabled
        self.max_events = max_events
        self.dropped = 0
        self._events: List[dict] = []
        #: (pid, tid) → thread name; pid → process name.
        self._thread_names: Dict[Tuple[int, int], str] = {}
        self._process_names: Dict[int, str] = {}

    # ------------------------------------------------------------- emission

    def _add(self, event: dict) -> bool:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return False
        self._events.append(event)
        return True

    def duration(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        pid: int,
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        """A complete duration event (``ph: "X"``)."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._add(event)

    def instant(
        self,
        name: str,
        cat: str,
        ts: float,
        pid: int,
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        """A thread-scoped instant event (``ph: "i"``)."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": ts,
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._add(event)

    def counter(self, name: str, ts: float, values: dict, pid: int, tid: int = 0) -> None:
        """A counter-track sample (``ph: "C"``)."""
        if not self.enabled:
            return
        self._add(
            {
                "name": name,
                "ph": "C",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "args": dict(values),
            }
        )

    # --------------------------------------------------------------- naming

    def set_process_name(self, pid: int, name: str) -> None:
        self._process_names[pid] = name

    def set_thread_name(self, pid: int, tid: int, name: str) -> None:
        self._thread_names[(pid, tid)] = name

    def register_tracks(self, pid_base: int = 0, label: str = "") -> None:
        """Name the standard subsystem tracks for one device."""
        prefix = f"{label} " if label else ""
        for pid, name in PROCESS_NAMES.items():
            self.set_process_name(pid_base + pid, prefix + name)
        for tid, name in DRIVER_THREAD_NAMES.items():
            self.set_thread_name(pid_base + PID_DRIVER, tid, name)

    # --------------------------------------------------------------- export

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[dict]:
        return list(self._events)

    @property
    def num_tracks(self) -> int:
        """Distinct processes that actually carry events."""
        return len({e["pid"] for e in self._events})

    def _metadata_events(self) -> List[dict]:
        out = []
        for pid, name in sorted(self._process_names.items()):
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        for (pid, tid), name in sorted(self._thread_names.items()):
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        return out

    def to_dict(self) -> dict:
        """The trace as a JSON-ready dict: metadata first, events by time."""
        events = self._metadata_events()
        events.extend(sorted(self._events, key=lambda e: (e["ts"], e["pid"], e["tid"])))
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "uvm-repro",
                "dropped_events": self.dropped,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    def write(self, path: Union[str, Path]) -> Path:
        """Serialize to ``path``; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
