#!/usr/bin/env python3
"""GEMM under UVM: real numerics + batch profiles across memory regimes.

Computes a blocked matrix product *numerically* (validated against NumPy)
while simulating the identical tile traversal through the UVM stack in
three regimes the paper studies:

1. in-core, prefetching off   (§4's baseline fault path)
2. in-core, prefetching on    (Fig 14's batch elimination)
3. oversubscribed, prefetch on (Fig 12/15's eviction interplay)

Run:
    python examples/gemm_oversubscription.py
"""

import numpy as np

from repro import UvmSystem, default_config
from repro.apps.gemm import blocked_gemm
from repro.analysis.report import ascii_table
from repro.units import MB, fmt_bytes, fmt_usec
from repro.workloads import Sgemm


def run_regime(label, n, prefetch, gpu_mem_mb):
    config = default_config(prefetch_enabled=prefetch)
    config.gpu.memory_bytes = gpu_mem_mb * MB
    system = UvmSystem(config)
    result = Sgemm(n=n, tile=256).run(system)
    recs = result.records
    return [
        label,
        result.num_batches,
        fmt_usec(result.batch_time_usec),
        fmt_usec(result.kernel_time_usec),
        sum(r.evictions for r in recs),
        fmt_bytes(sum(r.bytes_h2d for r in recs)),
    ]


def main() -> None:
    # --- the numbers themselves -------------------------------------------
    n_numeric = 256
    rng = np.random.default_rng(0)
    a = rng.standard_normal((n_numeric, n_numeric)).astype(np.float32)
    b = rng.standard_normal((n_numeric, n_numeric)).astype(np.float32)
    c = blocked_gemm(a, b, tile=64)
    err = float(np.max(np.abs(c - a @ b)))
    print(f"blocked GEMM vs numpy reference: max |error| = {err:.2e}")
    assert err < 1e-3

    # --- the paging profiles ----------------------------------------------
    n = 1536  # 3 x 9.4 MiB matrices
    rows = [
        run_regime("in-core, prefetch off", n, prefetch=False, gpu_mem_mb=64),
        run_regime("in-core, prefetch on", n, prefetch=True, gpu_mem_mb=64),
        run_regime("oversubscribed (~175%), prefetch on", n, prefetch=True, gpu_mem_mb=16),
    ]
    print()
    print(
        ascii_table(
            ["regime", "batches", "batch time", "kernel time", "evictions", "migrated"],
            rows,
            title=f"sgemm n={n} through the simulated UVM stack:",
        )
    )
    print(
        "\nPrefetching collapses the batch count (Fig 14); oversubscription"
        "\nbrings eviction churn and its restart/migrate-back costs (Fig 12)."
    )


if __name__ == "__main__":
    main()
