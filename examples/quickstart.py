#!/usr/bin/env python3
"""Quickstart: run the paper's Listing 1 vector-add under the simulated UVM
stack and read the instrumented batch log.

This reproduces the headline microbenchmark of §3.2: a single warp whose 32
threads each touch one page per vector.  The first fault batch contains
exactly 56 faults — the per-µTLB outstanding-fault cap — and no write can
execute until all 64 prerequisite reads are fulfilled (register scoreboard).

Run:
    python examples/quickstart.py
"""

from repro import UvmSystem, default_config
from repro.analysis.report import ascii_table
from repro.units import fmt_usec
from repro.workloads import VecAddPageStride


def main() -> None:
    # A system with the paper's Titan V hardware parameters; prefetching is
    # disabled to expose the raw fault path (as the paper's §3 study does).
    config = default_config(prefetch_enabled=False)
    system = UvmSystem(config)

    # The workload allocates a, b, c, host-initializes the inputs, and
    # launches the kernel.  All three steps run through the managed API.
    result = VecAddPageStride().run(system)

    print("=== Listing 1 vector add through UVM ===")
    print(f"batches serviced : {result.num_batches}")
    print(f"total faults     : {result.total_faults}")
    print(f"kernel time      : {fmt_usec(result.kernel_time_usec)}")
    print(f"batch time       : {fmt_usec(result.batch_time_usec)}")
    print()

    rows = []
    for r in result.records[:10]:
        rows.append(
            [
                r.batch_id,
                r.num_faults_raw,
                r.num_faults_unique,
                r.num_vablocks,
                fmt_usec(r.duration),
                f"{r.transfer_fraction:.0%}",
            ]
        )
    print(
        ascii_table(
            ["batch", "faults", "unique", "VABlocks", "service time", "transfer %"],
            rows,
            title="First batches (note the 56-fault µTLB cap in batch 0):",
        )
    )

    first = result.records[0]
    assert first.num_faults_raw == 56, "expected the Fig 3 µTLB cap"
    print("\nFirst batch hit the 56-fault per-µTLB limit, as in Fig 3 of the paper.")


if __name__ == "__main__":
    main()
