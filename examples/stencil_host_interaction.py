#!/usr/bin/env python3
"""Host-OS interaction study: how CPU-side parallelization hurts GPU faults.

Reproduces the Fig 11 phenomenon on the multigrid workload: initializing
the grids with one host thread vs. one-per-core changes *GPU* fault
performance by ~2x, because `unmap_mapping_range()` on the fault path has
to shoot down TLB entries on every core that first-touched a page.

Also demonstrates the §6 ablation: performing the unmapping asynchronously
off the fault path recovers the loss.

Run:
    python examples/stencil_host_interaction.py
"""

import numpy as np

from repro import UvmSystem, default_config
from repro.analysis.report import ascii_table
from repro.apps.multigrid import MultigridPoisson
from repro.units import fmt_usec
from repro.workloads import Hpgmg


def run_case(host_threads: int, async_unmap: bool = False):
    config = default_config(prefetch_enabled=True, async_unmap=async_unmap)
    config.host.num_threads = host_threads
    system = UvmSystem(config)
    result = Hpgmg(n=1024, levels=3, cycles=2).run(system)
    recs = [r for r in result.records if r.duration > 0]
    unmap_frac = float(np.mean([r.unmap_fraction for r in recs])) if recs else 0.0
    return result, unmap_frac


def main() -> None:
    # --- the solver itself is real math ------------------------------------
    rng = np.random.default_rng(0)
    f = rng.standard_normal((64, 64))
    _, history = MultigridPoisson(levels=3).solve(f, cycles=2)
    print(
        "multigrid V-cycles contract the residual: "
        + " -> ".join(f"{h:.2f}" for h in history)
    )

    # --- Fig 11: host threading vs fault performance -----------------------
    rows = []
    base, _ = run_case(host_threads=1)
    for label, threads, async_unmap in [
        ("1 host thread", 1, False),
        ("64 host threads (OpenMP default)", 64, False),
        ("64 host threads + async unmap (§6)", 64, True),
    ]:
        result, unmap_frac = run_case(threads, async_unmap)
        rows.append(
            [
                label,
                fmt_usec(result.kernel_time_usec),
                f"{result.kernel_time_usec / base.kernel_time_usec:.2f}x",
                "(off fault path)" if async_unmap else f"{unmap_frac:.0%}",
            ]
        )
    print()
    print(
        ascii_table(
            ["configuration", "kernel time", "vs 1 thread", "mean unmap share"],
            rows,
            title="HPGMG V-cycles: host first-touch threading vs GPU fault cost:",
        )
    )
    print(
        "\nMultithreaded first-touch spreads PTEs across cores; the driver's"
        "\nunmap_mapping_range() calls on the fault path pay for the TLB"
        "\nshootdowns (Fig 11).  Moving unmaps off the fault path (§6)"
        "\nrecovers the single-threaded performance."
    )


if __name__ == "__main__":
    main()
