#!/usr/bin/env python3
"""Beyond the paper: memory hints and the multi-GPU foundation.

Part 1 compares the three ways a real application can place data under UVM
(the "advanced features" of Chien et al., which the paper's related work
discusses): demand faulting, `cudaMemPrefetchAsync`-style bulk migration,
and `cudaMemAdviseSetAccessedBy` zero-copy mappings.

Part 2 exercises the paper's stated future direction (§1): several devices
over one host OS, with domain decomposition, parallel launches, and
peer-to-peer page migration for the shared halo.

Run:
    python examples/hints_and_multigpu.py
"""

from repro import KernelLaunch, Phase, UvmSystem, WarpProgram, default_config
from repro.analysis.report import ascii_table
from repro.multigpu import MultiGpuSystem
from repro.units import MB, fmt_usec


def sweep(alloc, start, stop, name="sweep"):
    pages = list(alloc.pages(start, stop))
    phases = [
        Phase.of(pages[i : i + 64], compute_usec=2.0)
        for i in range(0, len(pages), 64)
    ]
    return KernelLaunch(name, [WarpProgram(phases)])


def part1_hints() -> None:
    rows = []
    for mode in ("demand faulting", "mem_prefetch", "accessed-by"):
        system = UvmSystem(default_config(prefetch_enabled=True))
        data = system.managed_alloc(16 * MB, "data")
        system.host_touch(data)
        t0 = system.clock.now
        if mode == "mem_prefetch":
            system.mem_prefetch(data)
        elif mode == "accessed-by":
            system.mem_advise_accessed_by(data)
        result = system.launch(sweep(data, 0, data.num_pages))
        rows.append(
            [
                mode,
                fmt_usec(system.clock.now - t0),
                result.total_faults,
                result.num_batches,
            ]
        )
    print(
        ascii_table(
            ["placement", "end-to-end", "faults", "batches"],
            rows,
            title="Part 1 — data placement strategies (16 MiB read):",
        )
    )
    print()


def part2_multigpu() -> None:
    rows = []
    for devices in (1, 2, 4):
        mg = MultiGpuSystem(num_devices=devices, config=default_config())
        domain = mg.managed_alloc(32 * MB, "domain")
        mg.host_touch(domain)
        per = domain.num_pages // devices
        t0 = mg.clock.now
        mg.parallel_launch(
            [(d, sweep(domain, d * per, (d + 1) * per, f"dom{d}")) for d in range(devices)]
        )
        rows.append([devices, fmt_usec(mg.clock.now - t0)])
    print(
        ascii_table(
            ["devices", "makespan"],
            rows,
            title="Part 2a — domain-decomposed sweep across devices:",
        )
    )
    print()

    # Halo exchange: device 1 reads pages device 0 owns.
    rows = []
    for peer in (True, False):
        mg = MultiGpuSystem(num_devices=2, config=default_config(), peer_enabled=peer)
        halo = mg.managed_alloc(8 * MB, "halo")
        mg.host_touch(halo)
        mg.launch(0, sweep(halo, 0, halo.num_pages, "produce"))
        t0 = mg.clock.now
        mg.launch(1, sweep(halo, 0, halo.num_pages, "consume"))
        rows.append(
            [
                "peer-to-peer" if peer else "bounce via host",
                fmt_usec(mg.clock.now - t0),
                mg.peer_stats.total_pages,
            ]
        )
    print(
        ascii_table(
            ["migration path", "exchange time", "pages moved"],
            rows,
            title="Part 2b — halo handoff between devices:",
        )
    )


if __name__ == "__main__":
    part1_hints()
    part2_multigpu()
