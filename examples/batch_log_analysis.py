#!/usr/bin/env python3
"""Working with the instrumented batch log, like the paper's tooling.

The paper's modified driver logs per-batch metadata "to the system log at
the end of each batch" and analyzes it offline.  This example runs a
workload, persists the batch log as JSONL, reloads it, and computes the
paper's statistics from the file — the full offline-analysis loop.

Run:
    python examples/batch_log_analysis.py
"""

import tempfile
from pathlib import Path

from repro import BatchLog, UvmSystem, default_config
from repro.analysis.fits import fit_time_vs_bytes
from repro.analysis.report import ascii_table, format_usec_stats
from repro.analysis.stats import duplicate_summary, per_sm_stats, vablock_stats
from repro.units import MB, fmt_bytes
from repro.workloads import CuFft


def main() -> None:
    system = UvmSystem(default_config(prefetch_enabled=False))
    result = CuFft(nbytes=32 * MB).run(system)

    # --- persist the "driver log" ------------------------------------------
    log_path = Path(tempfile.gettempdir()) / "uvm_repro_cufft_batches.jsonl"
    result.batch_log().to_jsonl(log_path)
    print(f"wrote {result.num_batches} batch records to {log_path}")

    # --- offline analysis from the file only -------------------------------
    log = BatchLog.from_jsonl(log_path)
    records = log.records

    sm = per_sm_stats(records, num_sms=system.config.gpu.num_sms)
    vb = vablock_stats(records)
    dup = duplicate_summary(records)
    fit, _, _ = fit_time_vs_bytes(records)

    rows = [
        ["batches", len(records)],
        ["total faults (raw)", log.total_faults_raw],
        ["total faults (unique)", log.total_faults_unique],
        ["duplicate fraction", f"{dup.dup_fraction:.0%}"],
        ["  type 1 (same µTLB)", dup.dup_same_utlb],
        ["  type 2 (cross µTLB)", dup.dup_cross_utlb],
        ["avg faults/SM/batch (Tab 2)", f"{sm.mean:.2f}"],
        ["VABlocks/batch (Tab 3)", f"{vb.vablocks_per_batch:.2f}"],
        ["faults/VABlock (Tab 3)", f"{vb.faults_per_vablock.mean:.2f}"],
        ["bytes migrated", fmt_bytes(log.total_bytes_h2d)],
        ["cost slope (Fig 6)", f"{fit.slope * MB:.0f} us/MB"],
        ["batch durations", format_usec_stats([r.duration for r in records])],
    ]
    print()
    print(ascii_table(["metric", "value"], rows, title="cufft batch-log analysis:"))


if __name__ == "__main__":
    main()
